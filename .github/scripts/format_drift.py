#!/usr/bin/env python3
"""Ruff-format ratchet: enforce formatting only off the allowlist.

``ruff format --check`` over the whole tree would fail CI on formatting
drift that predates the enforced check — drift a tree-wide rewrite would
fix only at the cost of burying real changes under a format-only diff.
This script runs the check and splits the offenders against
``.github/ruff-format-allowlist.txt``:

* files **on** the allowlist may drift — they are grandfathered and only
  produce a warning line;
* files **off** the allowlist (anything added after the ratchet landed,
  or anything removed from the allowlist once reformatted) fail the job.

The allowlist may only ever shrink.  To ratchet a file: run
``ruff format <file>``, commit the result, and delete its line here.
Never add a line — new files must land formatted.

Exit status: 0 when no unallowlisted drift, 1 otherwise; ruff's own
failures (missing binary, bad flags) propagate verbatim.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
ALLOWLIST = ROOT / ".github" / "ruff-format-allowlist.txt"
TARGETS = ("src", "tests", "benchmarks", "examples")
_PREFIX = "Would reformat: "


def load_allowlist() -> set[str]:
    entries: set[str] = set()
    for raw in ALLOWLIST.read_text().splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def main() -> int:
    allowed = load_allowlist()
    proc = subprocess.run(
        ["ruff", "format", "--check", *TARGETS],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    drifted: list[str] = []
    for line in proc.stdout.splitlines() + proc.stderr.splitlines():
        line = line.strip()
        if line.startswith(_PREFIX):
            drifted.append(line[len(_PREFIX):])
    if proc.returncode != 0 and not drifted:
        # ruff failed without reporting drift (crash, bad invocation):
        # surface its output and propagate the failure untouched.
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        return proc.returncode
    grandfathered = sorted(path for path in drifted if path in allowed)
    offenders = sorted(path for path in drifted if path not in allowed)
    if grandfathered:
        print(
            f"{len(grandfathered)} allowlisted file(s) still drift "
            "(grandfathered — reformat and remove from the allowlist):"
        )
        for path in grandfathered:
            print(f"  {path}")
    if offenders:
        print(
            f"{len(offenders)} file(s) fail `ruff format --check` and "
            "are not on .github/ruff-format-allowlist.txt:"
        )
        for path in offenders:
            print(f"  {path}")
        print("Fix: run `ruff format <file>` and commit the result.")
        return 1
    print("ruff format: no unallowlisted drift.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
