"""Tests for the offline helper and the online streaming pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import campus_temperature
from repro.db.queries import most_probable_range_query
from repro.exceptions import InvalidParameterError
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.pipeline import OnlinePipeline, create_probabilistic_view
from repro.view.omega import OmegaGrid
from repro.view.sigma_cache import SigmaCache


class TestOfflinePipeline:
    def test_view_has_rows_for_every_inference_time(self, campus_series):
        grid = OmegaGrid(delta=0.5, n=6)
        view = create_probabilistic_view(
            campus_series, VariableThresholdingMetric(), H=50, grid=grid,
            step=10,
        )
        expected_times = list(range(50, len(campus_series), 10))
        assert view.times == expected_times
        assert len(view) == len(expected_times) * 6

    def test_cached_and_naive_views_agree_loosely(self, campus_series):
        grid = OmegaGrid(delta=0.5, n=6)
        metric = VariableThresholdingMetric()
        naive = create_probabilistic_view(
            campus_series, metric, H=50, grid=grid, step=20,
        )
        cached = create_probabilistic_view(
            campus_series, metric, H=50, grid=grid, step=20,
            distance_constraint=0.005,
        )
        for t in naive.times:
            for a, b in zip(naive.tuples_at(t), cached.tuples_at(t)):
                assert b.probability == pytest.approx(a.probability, abs=0.02)

    def test_view_probabilities_valid(self, campus_series):
        view = create_probabilistic_view(
            campus_series, VariableThresholdingMetric(), H=40,
            grid=OmegaGrid(delta=1.0, n=4), step=25,
        )
        for t in view.times:
            assert 0.0 <= view.total_mass_at(t) <= 1.0 + 1e-9


class TestOnlinePipeline:
    def test_warmup_then_rows(self):
        pipe = OnlinePipeline(
            VariableThresholdingMetric(), H=30, grid=OmegaGrid(0.5, 4)
        )
        series = campus_temperature(60, rng=0)
        steps = [pipe.feed(v) for v in series.values]
        assert all(s.is_warmup for s in steps[:30])
        assert all(not s.is_warmup for s in steps[30:])

    def test_online_matches_offline(self, campus_series):
        """Online feed must produce the same densities as the batch run."""
        H = 40
        metric_online = VariableThresholdingMetric()
        metric_offline = VariableThresholdingMetric()
        grid = OmegaGrid(0.5, 4)
        pipe = OnlinePipeline(metric_online, H=H, grid=grid)
        for value in campus_series.values[:200]:
            pipe.feed(value)
        online = pipe.forecasts()
        offline = metric_offline.run(campus_series.slice(0, 200), H)
        assert len(online) == len(offline)
        np.testing.assert_allclose(online.means, offline.means, rtol=1e-9)
        np.testing.assert_allclose(
            online.volatilities, offline.volatilities, rtol=1e-9
        )

    def test_to_view_materialises_rows(self):
        pipe = OnlinePipeline(
            VariableThresholdingMetric(), H=30, grid=OmegaGrid(0.5, 4)
        )
        for value in campus_temperature(80, rng=1).values:
            pipe.feed(value)
        view = pipe.to_view("online_view")
        assert view.name == "online_view"
        assert len(view.times) == 50
        modal = most_probable_range_query(view)
        assert set(modal) == set(view.times)

    def test_pre_sized_cache_accepted(self):
        grid = OmegaGrid(0.5, 4)
        cache = SigmaCache(grid, 0.01, 10.0, distance_constraint=0.05)
        pipe = OnlinePipeline(
            VariableThresholdingMetric(), H=30, grid=grid, cache=cache
        )
        for value in campus_temperature(50, rng=2).values:
            pipe.feed(value)
        assert cache.stats.lookups > 0

    def test_window_below_metric_minimum_rejected(self):
        with pytest.raises(InvalidParameterError):
            OnlinePipeline(
                VariableThresholdingMetric(), H=2, grid=OmegaGrid(0.5, 4)
            )

    def test_t_counter_advances(self):
        pipe = OnlinePipeline(
            VariableThresholdingMetric(), H=30, grid=OmegaGrid(0.5, 4)
        )
        assert pipe.t == 0
        pipe.feed(1.0)
        assert pipe.t == 1
