"""Tests for GARCH estimation, filtering, forecasting and the gradient."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EstimationError, InvalidParameterError, NotFittedError
from repro.timeseries.garch import GARCHModel, GARCHParams


def _make_params(omega=0.2, alpha=0.15, beta=0.7) -> GARCHParams:
    return GARCHParams(
        omega=omega, alpha=np.array([alpha]), beta=np.array([beta])
    )


class TestParams:
    def test_persistence(self):
        assert _make_params().persistence == pytest.approx(0.85)

    def test_unconditional_variance(self):
        params = _make_params(omega=0.3, alpha=0.1, beta=0.6)
        assert params.unconditional_variance == pytest.approx(0.3 / 0.3)

    def test_unconditional_variance_nonstationary_is_inf(self):
        params = _make_params(alpha=0.5, beta=0.6)
        assert params.unconditional_variance == float("inf")

    def test_validate_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            _make_params(omega=0.0).validate()
        with pytest.raises(InvalidParameterError):
            _make_params(alpha=-0.1).validate()
        with pytest.raises(InvalidParameterError):
            _make_params(alpha=0.5, beta=0.6).validate()


class TestFilterVariance:
    def test_lfilter_matches_naive_recursion(self, rng):
        """The vectorised s=1 path must equal the definition exactly."""
        data = rng.standard_normal(60)
        params = _make_params()
        model = GARCHModel()
        fast = model.filter_variance(data, params)
        initial = float(np.var(data))
        slow = np.empty(60)
        for i in range(60):
            a2 = data[i - 1] ** 2 if i >= 1 else initial
            prev = slow[i - 1] if i >= 1 else initial
            slow[i] = params.omega + params.alpha[0] * a2 + params.beta[0] * prev
        np.testing.assert_allclose(fast, slow, rtol=1e-10)

    def test_s0_pure_arch(self, rng):
        data = rng.standard_normal(30)
        params = GARCHParams(omega=0.1, alpha=np.array([0.3]), beta=np.empty(0))
        variance = GARCHModel(m=1, s=0).filter_variance(data, params)
        initial = float(np.var(data))
        expected0 = 0.1 + 0.3 * initial
        assert variance[0] == pytest.approx(expected0)
        assert variance[5] == pytest.approx(0.1 + 0.3 * data[4] ** 2)

    def test_s2_loop_path(self, rng):
        data = rng.standard_normal(40)
        params = GARCHParams(
            omega=0.1, alpha=np.array([0.2]), beta=np.array([0.3, 0.2])
        )
        variance = GARCHModel(m=1, s=2).filter_variance(data, params)
        assert variance.shape == (40,)
        assert np.all(variance > 0)


class TestGradient:
    def test_gradient_matches_finite_differences(self, rng):
        data = rng.standard_normal(80)
        params = _make_params(omega=0.3, alpha=0.2, beta=0.5)
        loglik, gradient = GARCHModel._loglik_and_grad_11(data, params)
        model = GARCHModel()
        eps = 1e-6
        for index, delta in enumerate(
            [(eps, 0, 0), (0, eps, 0), (0, 0, eps)]
        ):
            shifted = GARCHParams(
                omega=params.omega + delta[0],
                alpha=params.alpha + delta[1],
                beta=params.beta + delta[2],
            )
            fd = (model._log_likelihood(data, shifted) - loglik) / eps
            assert gradient[index] == pytest.approx(fd, rel=1e-3, abs=1e-4)


class TestFit:
    def test_recovers_parameters_on_long_sample(self):
        true = _make_params(omega=0.2, alpha=0.15, beta=0.7)
        shocks = GARCHModel.simulate(true, 4000, rng=0)
        model = GARCHModel().fit(shocks)
        assert model.params_.persistence == pytest.approx(0.85, abs=0.08)
        assert model.params_.alpha[0] == pytest.approx(0.15, abs=0.08)

    def test_stationarity_always_enforced(self, rng):
        # Integrated-looking input should still give persistence < 1.
        data = np.cumsum(rng.standard_normal(300)) * 0.2
        model = GARCHModel().fit(data)
        assert model.params_.persistence < 1.0

    def test_constant_residuals_fall_back_to_flat_variance(self):
        model = GARCHModel().fit(np.zeros(50))
        assert model.params_.alpha[0] == 0.0
        assert model.params_.beta[0] == 0.0
        assert model.forecast_variance() > 0.0

    def test_conditional_variance_aligned(self, rng):
        data = rng.standard_normal(100)
        model = GARCHModel().fit(data)
        assert model.conditional_variance_.shape == data.shape
        assert np.all(model.conditional_variance_ > 0)

    def test_warm_start_reaches_similar_likelihood(self, rng):
        shocks = GARCHModel.simulate(_make_params(), 300, rng=3)
        cold = GARCHModel().fit(shocks)
        warm = GARCHModel().fit(shocks, warm_start=cold.params_)
        assert warm.loglik_ >= cold.loglik_ - 1.0

    def test_warm_start_wrong_order_ignored(self, rng):
        shocks = GARCHModel.simulate(_make_params(), 200, rng=4)
        wrong = GARCHParams(
            omega=0.1, alpha=np.array([0.1, 0.1]), beta=np.array([0.5])
        )
        model = GARCHModel(m=1, s=1).fit(shocks, warm_start=wrong)
        assert model.params_.m == 1

    def test_too_short_input_rejected(self):
        with pytest.raises(Exception):
            GARCHModel().fit(np.array([1.0]))


class TestForecast:
    def test_forecast_matches_eq6(self, rng):
        data = rng.standard_normal(120)
        model = GARCHModel().fit(data)
        params = model.params_
        expected = (
            params.omega
            + params.alpha[0] * data[-1] ** 2
            + params.beta[0] * model.conditional_variance_[-1]
        )
        assert model.forecast_variance() == pytest.approx(expected)

    def test_forecast_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GARCHModel().forecast_variance()


class TestSimulate:
    def test_volatility_clustering_present(self):
        shocks, variance = GARCHModel.simulate(
            _make_params(alpha=0.25, beta=0.7), 4000, rng=5, return_variance=True
        )
        # Squared shocks must correlate with the generating variance.
        corr = np.corrcoef(shocks**2, variance)[0, 1]
        assert corr > 0.2

    def test_nonstationary_params_rejected(self):
        with pytest.raises((EstimationError, InvalidParameterError)):
            GARCHModel.simulate(_make_params(alpha=0.6, beta=0.5), 100)

    def test_reproducible(self):
        a = GARCHModel.simulate(_make_params(), 50, rng=6)
        b = GARCHModel.simulate(_make_params(), 50, rng=6)
        np.testing.assert_array_equal(a, b)

    def test_order_validation(self):
        with pytest.raises(InvalidParameterError):
            GARCHModel(m=0)
        with pytest.raises(InvalidParameterError):
            GARCHModel(s=-1)
