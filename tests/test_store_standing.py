"""Standing queries: incremental results must equal full recomputation.

The acceptance invariant of the store subsystem: for every query kind and
any micro-batch schedule, the accumulated standing result is *equal* (dict
/ list equality, not approx) to running the one-shot query from
:mod:`repro.db.queries` / :mod:`repro.db.stream_queries` over the fully
materialised view.
"""

from __future__ import annotations

import pytest

from repro.data.synthetic import campus_temperature
from repro.db.queries import threshold_query
from repro.db.stream_queries import (
    exceedance_probability,
    expected_time_above,
    sustained_exceedance_probability,
    windowed_expected_value,
)
from repro.exceptions import InvalidParameterError
from repro.store import Catalog, StandingQuery
from repro.view.omega import OmegaGrid

H = 25
GRID = OmegaGrid(delta=0.4, n=6)
THRESHOLD = 20.0

#: Ragged micro-batch schedules, including single values and warm-up-only.
SCHEDULES = [
    (40, 40, 40, 40, 40),
    (200,),
    (5, 1, 1, 1, 80, 2, 110),
    (24, 1, 175),
]


def _catalog(tmp_path, series_id="s"):
    catalog = Catalog(tmp_path / "cat")
    catalog.create_series(
        series_id, metric="variable_threshold", H=H, grid=GRID
    )
    return catalog


def _queries():
    return {
        "threshold": StandingQuery.threshold_tuples(0.25),
        "exceedance": StandingQuery.exceedance(THRESHOLD),
        "windowed_expected_value": StandingQuery.windowed_expected_value(7),
        "expected_time_above": StandingQuery.expected_time_above(THRESHOLD, 4),
        "sustained_exceedance": StandingQuery.sustained_exceedance(THRESHOLD, 3),
    }


def _recompute(kind, view):
    if kind == "threshold":
        return threshold_query(view, 0.25)
    if kind == "exceedance":
        return exceedance_probability(view, THRESHOLD)
    if kind == "windowed_expected_value":
        return windowed_expected_value(view, 7)
    if kind == "expected_time_above":
        return expected_time_above(view, THRESHOLD, 4)
    return sustained_exceedance_probability(view, THRESHOLD, 3)


@pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: "x".join(map(str, s)))
def test_incremental_equals_full_recompute(tmp_path, schedule):
    values = campus_temperature(sum(schedule), rng=11).values
    catalog = _catalog(tmp_path)
    handles = {
        kind: catalog.register_query("s", query)
        for kind, query in _queries().items()
    }
    cursor = 0
    for batch in schedule:
        catalog.append("s", values[cursor : cursor + batch])
        cursor += batch
    view = catalog.view("s")
    for kind, handle in handles.items():
        assert handle.result() == _recompute(kind, view), kind


def test_deltas_partition_the_result(tmp_path):
    values = campus_temperature(150, rng=4).values
    catalog = _catalog(tmp_path)
    handle = catalog.register_query("s", StandingQuery.exceedance(THRESHOLD))
    merged: dict[int, float] = {}
    cursor = 0
    for batch in (60, 30, 60):
        result = catalog.append("s", values[cursor : cursor + batch])
        cursor += batch
        (query_handle, delta), = result.deltas
        assert query_handle is handle
        assert not set(delta) & set(merged)  # Each time reported once.
        merged.update(delta)
    assert merged == handle.result()
    assert handle.last_delta == delta


def test_registration_replays_stored_history(tmp_path):
    values = campus_temperature(170, rng=8).values
    catalog = _catalog(tmp_path)
    catalog.append("s", values[:100])
    late = catalog.register_query(
        "s", StandingQuery.windowed_expected_value(6)
    )
    catalog.append("s", values[100:])
    assert late.result() == windowed_expected_value(catalog.view("s"), 6)


def test_registration_survives_on_fresh_handle_after_reopen(tmp_path):
    values = campus_temperature(120, rng=9).values
    root = tmp_path / "cat"
    catalog = Catalog(root)
    catalog.create_series("s", metric="variable_threshold", H=H, grid=GRID)
    catalog.append("s", values[:80])
    # Standing registrations are session-scoped: a reopened catalog starts
    # empty, and re-registering replays the stored segments.
    reopened = Catalog(root)
    assert reopened.series("s").queries() == []
    handle = reopened.register_query("s", StandingQuery.exceedance(THRESHOLD))
    reopened.append("s", values[80:])
    assert handle.result() == exceedance_probability(
        reopened.view("s"), THRESHOLD
    )


def test_windowed_results_empty_until_window_fills(tmp_path):
    values = campus_temperature(H + 4, rng=2).values
    catalog = _catalog(tmp_path)
    handle = catalog.register_query(
        "s", StandingQuery.windowed_expected_value(10)
    )
    catalog.append("s", values)  # Only 4 warm times < window of 10.
    assert handle.result() == {}
    catalog.append("s", campus_temperature(20, rng=3).values)
    assert len(handle.result()) > 0


def test_windowed_queries_reject_non_contiguous_static_views(tmp_path):
    """Parity with the one-shot queries: gapped times must not silently
    window by array position."""
    from repro.db.prob_view import ProbTuple, ProbabilisticView

    gapped = ProbabilisticView("gapped", [
        ProbTuple(t=t, low=0.0, high=10.0, probability=1.0)
        for t in (2, 4, 6)
    ])
    catalog = Catalog(tmp_path / "cat")
    catalog.save_view("gapped", gapped)
    for query in (
        StandingQuery.windowed_expected_value(2),
        StandingQuery.expected_time_above(5.0, 2),
        StandingQuery.sustained_exceedance(5.0, 2),
    ):
        with pytest.raises(InvalidParameterError, match="consecutive"):
            catalog.register_query("gapped", query)
    # Per-time kinds have no window semantics and stay legal, like their
    # one-shot counterparts.
    handle = catalog.register_query("gapped", StandingQuery.exceedance(5.0))
    assert set(handle.result()) == {2, 4, 6}


def test_query_spec_validation():
    with pytest.raises(InvalidParameterError):
        StandingQuery.threshold_tuples(1.5)
    with pytest.raises(InvalidParameterError):
        StandingQuery.windowed_expected_value(0)
    with pytest.raises(InvalidParameterError):
        StandingQuery.sustained_exceedance(1.0, -2)
    with pytest.raises(InvalidParameterError):
        StandingQuery(kind="bogus")
    # Directly constructed specs must fail fast on missing parameters,
    # not deep inside the first update().
    with pytest.raises(InvalidParameterError, match="requires"):
        StandingQuery(kind="sustained_exceedance")
    with pytest.raises(InvalidParameterError, match="requires"):
        StandingQuery(kind="threshold")
    with pytest.raises(InvalidParameterError, match="requires"):
        StandingQuery(kind="expected_time_above", threshold=1.0)
    assert StandingQuery(kind="exceedance", threshold=2.0).threshold == 2.0


def test_threshold_tuples_accumulate_in_order(tmp_path):
    values = campus_temperature(140, rng=6).values
    catalog = _catalog(tmp_path)
    handle = catalog.register_query("s", StandingQuery.threshold_tuples(0.2))
    for start in range(0, 140, 35):
        catalog.append("s", values[start : start + 35])
    hits = handle.result()
    times = [tup.t for tup in hits]
    assert times == sorted(times)
    assert hits == threshold_query(catalog.view("s"), 0.2)
