"""End-to-end integration tests crossing every subsystem."""

from __future__ import annotations

import numpy as np

from repro.data.errors import inject_errors
from repro.data.synthetic import campus_temperature
from repro.db.engine import Database
from repro.db.queries import (
    expected_value_query,
    most_probable_range_query,
    threshold_query,
)
from repro.db.table import Table
from repro.evaluation.density_distance import density_distance
from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.cgarch import CGARCHMetric
from repro.metrics.uniform_threshold import UniformThresholdingMetric
from repro.pipeline import create_probabilistic_view
from repro.view.omega import OmegaGrid


class TestPaperPipeline:
    """The full Fig. 2 architecture: raw values -> metric -> view -> queries."""

    def test_sql_to_probabilistic_queries(self, campus_series):
        db = Database()
        table = Table("raw_values", ["t", "r"])
        table.insert_many(
            zip(campus_series.timestamps.tolist(), campus_series.values.tolist())
        )
        db.register_table(table)
        view = db.execute(
            "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=8 "
            "METRIC arma_garch (p=1) WINDOW 60 CACHE (distance=0.02) "
            "FROM raw_values"
        )
        # The created view supports the downstream probabilistic queries the
        # paper motivates.
        modal = most_probable_range_query(view)
        assert len(modal) == len(view.times)
        confident = threshold_query(view, 0.3)
        assert all(tup.probability >= 0.3 for tup in confident)
        expectations = expected_value_query(view)
        # Expected values must track the raw series loosely.
        times = view.times
        raw_by_index = {i: campus_series[i] for i in times}
        errors = [abs(expectations[t] - raw_by_index[t]) for t in times]
        assert np.median(errors) < 2.0

    def test_expected_value_tracks_series_through_view(self, campus_series):
        grid = OmegaGrid(delta=0.25, n=40)  # Wide, fine grid.
        view = create_probabilistic_view(
            campus_series, ARMAGARCHMetric(), H=60, grid=grid, step=15,
        )
        expectations = expected_value_query(view)
        errors = [
            abs(expectations[t] - campus_series[t]) for t in view.times
        ]
        assert np.median(errors) < 1.0

    def test_garch_metric_beats_uniform_on_density_distance(self, campus_series):
        """The paper's headline Fig. 10 claim at test scale."""
        H = 60
        garch = ARMAGARCHMetric().run(campus_series, H, step=4)
        uniform = UniformThresholdingMetric(threshold=0.3).run(
            campus_series, H, step=4
        )
        dd_garch = density_distance(garch, campus_series)
        dd_uniform = density_distance(uniform, campus_series)
        assert dd_garch < dd_uniform

    def test_cgarch_cleans_and_view_stays_sane(self):
        clean = campus_temperature(400, rng=21)
        injection = inject_errors(
            clean, 6, magnitude=10.0, rng=22, protect_prefix=61
        )
        metric = CGARCHMetric(oc_max=8)
        forecasts, report = metric.run_with_report(injection.series, H=60)
        assert report.capture_rate(injection.error_indices) > 0.5
        grid = OmegaGrid(delta=0.5, n=10)
        from repro.view.builder import ViewBuilder
        from repro.db.prob_view import ProbabilisticView

        rows = ViewBuilder(grid).build_rows(forecasts)
        view = ProbabilisticView.from_rows("cleaned_view", rows, grid)
        for t in view.times:
            assert view.total_mass_at(t) <= 1.0 + 1e-6

    def test_online_offline_view_equivalence_via_sql(self, campus_series):
        """The same data through SQL and through the online pipeline agree."""
        from repro.metrics.variable_threshold import VariableThresholdingMetric
        from repro.pipeline import OnlinePipeline

        H, n_rows = 40, 150
        sub = campus_series.slice(0, n_rows)
        grid = OmegaGrid(delta=0.5, n=4)

        db = Database()
        table = Table("raw_values", ["t", "r"])
        table.insert_many(zip(sub.timestamps.tolist(), sub.values.tolist()))
        db.register_table(table)
        sql_view = db.execute(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=0.5, n=4 "
            "METRIC variable_threshold WINDOW 40 FROM raw_values"
        )

        pipe = OnlinePipeline(VariableThresholdingMetric(), H=H, grid=grid)
        for value in sub.values:
            pipe.feed(value)
        online_view = pipe.to_view("v_online")

        assert sql_view.times == online_view.times
        for t in sql_view.times:
            sql_probs = [tup.probability for tup in sql_view.tuples_at(t)]
            online_probs = [tup.probability for tup in online_view.tuples_at(t)]
            np.testing.assert_allclose(sql_probs, online_probs, atol=1e-9)


class TestRoomTracking:
    """The motivating Alice example of the paper's Fig. 1."""

    def test_room_probabilities_sum_and_locate(self):
        from repro.view.builder import ViewBuilder
        from repro.view.omega import OmegaRange
        from repro.metrics.variable_threshold import VariableThresholdingMetric

        rng = np.random.default_rng(30)
        # Alice walks from x=1 to x=3 over 200 ticks (rooms split at x=2).
        x = np.linspace(1.0, 3.0, 200) + rng.normal(0, 0.15, 200)
        from repro.timeseries.series import TimeSeries

        series = TimeSeries(x, name="alice-x")
        metric = VariableThresholdingMetric()
        forecasts = metric.run(series, H=30)
        rooms = [
            OmegaRange(0.0, 2.0, label="room 1"),
            OmegaRange(2.0, 4.0, label="room 2"),
        ]
        early = ViewBuilder.probabilities_for_ranges(forecasts[0], rooms)
        late = ViewBuilder.probabilities_for_ranges(forecasts[-1], rooms)
        assert early["room 1"] > early["room 2"]
        assert late["room 2"] > late["room 1"]
        for probs in (early, late):
            assert sum(probs.values()) <= 1.0 + 1e-9
