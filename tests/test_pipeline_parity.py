"""Online/offline parity: the invariant incremental maintenance rests on.

``OnlinePipeline.feed()`` over a stream must produce the same view —
tuple for tuple — as ``create_probabilistic_view()`` over the stored
series, and ``feed_batch()`` must reproduce the ``feed()`` loop exactly.
Without this, the catalog's segments would drift from what a full offline
rebuild would produce.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import campus_temperature
from repro.exceptions import InvalidParameterError
from repro.metrics.ewma import EWMAMetric
from repro.metrics.uniform_threshold import UniformThresholdingMetric
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.pipeline import OnlinePipeline, create_probabilistic_view
from repro.view.omega import OmegaGrid

H = 30
GRID = OmegaGrid(delta=0.5, n=6)
ATOL = 1e-10

METRICS = [
    VariableThresholdingMetric,
    lambda: UniformThresholdingMetric(threshold=1.5),
    EWMAMetric,
]
METRIC_IDS = ["variable_threshold", "uniform_threshold", "ewma"]


def _assert_views_match(actual, expected):
    assert len(actual) == len(expected)
    a, b = actual.columns, expected.columns
    assert np.array_equal(a.t, b.t)
    np.testing.assert_allclose(a.low, b.low, rtol=0, atol=ATOL)
    np.testing.assert_allclose(a.high, b.high, rtol=0, atol=ATOL)
    np.testing.assert_allclose(a.probability, b.probability, rtol=0, atol=ATOL)
    assert [a.labels[c] for c in a.label_code] == \
        [b.labels[c] for c in b.label_code]


@pytest.mark.parametrize("metric_cls", METRICS, ids=METRIC_IDS)
def test_feed_matches_offline_view(metric_cls):
    series = campus_temperature(180, rng=13)
    offline = create_probabilistic_view(
        series, metric_cls(), H=H, grid=GRID, view_name="offline"
    )
    pipeline = OnlinePipeline(metric_cls(), H=H, grid=GRID)
    for value in series.values:
        pipeline.feed(value)
    online = pipeline.to_view("online")
    _assert_views_match(online, offline)


@pytest.mark.parametrize("metric_cls", METRICS, ids=METRIC_IDS)
def test_feed_batch_matches_feed_loop(metric_cls):
    values = campus_temperature(160, rng=14).values

    looped = OnlinePipeline(metric_cls(), H=H, grid=GRID)
    for value in values:
        looped.feed(value)

    batched = OnlinePipeline(metric_cls(), H=H, grid=GRID)
    cursor = 0
    emitted = 0
    for batch in (3, 1, 40, 25, 2, 89):
        matrix = batched.feed_batch(values[cursor : cursor + batch])
        cursor += batch
        emitted += len(matrix)
    assert cursor == values.size
    assert batched.t == looped.t
    assert emitted == 160 - H
    _assert_views_match(batched.to_view("batched"), looped.to_view("looped"))


def test_feed_batch_returns_only_new_rows():
    values = campus_temperature(100, rng=1).values
    pipeline = OnlinePipeline(VariableThresholdingMetric(), H=H, grid=GRID)
    warm = pipeline.feed_batch(values[: H - 1])
    assert len(warm) == 0
    first = pipeline.feed_batch(values[H - 1 : H + 9])
    assert first.t.tolist() == list(range(H, H + 9))
    empty = pipeline.feed_batch(np.empty(0))
    assert len(empty) == 0
    assert pipeline.t == H + 9


def test_feed_batch_rejects_matrices():
    pipeline = OnlinePipeline(VariableThresholdingMetric(), H=H, grid=GRID)
    with pytest.raises(InvalidParameterError):
        pipeline.feed_batch(np.zeros((4, 4)))


def test_state_capture_and_resume():
    values = campus_temperature(150, rng=21).values
    continuous = OnlinePipeline(VariableThresholdingMetric(), H=H, grid=GRID)
    continuous.feed_batch(values)

    first = OnlinePipeline(VariableThresholdingMetric(), H=H, grid=GRID)
    first.feed_batch(values[:90])
    window, next_t = first.window_values, first.t
    assert window.size == H and next_t == 90

    resumed = OnlinePipeline(VariableThresholdingMetric(), H=H, grid=GRID)
    resumed.load_state(window, next_t)
    matrix = resumed.feed_batch(values[90:])
    assert matrix.t.tolist() == list(range(90, 150))
    reference = continuous.to_view("ref").columns
    suffix = reference.probability[reference.t >= 90]
    np.testing.assert_allclose(
        matrix.probabilities.ravel(), suffix, rtol=0, atol=ATOL
    )


def test_load_state_validation():
    pipeline = OnlinePipeline(VariableThresholdingMetric(), H=H, grid=GRID)
    with pytest.raises(InvalidParameterError):
        pipeline.load_state(np.zeros(H + 1), H + 1)  # Oversized window.
    with pytest.raises(InvalidParameterError):
        pipeline.load_state(np.zeros(10), 5)  # t behind the window.
    with pytest.raises(InvalidParameterError):
        # Undersized window for a warm pipeline: accepting it would
        # silently re-enter warm-up and emit a gapped time range.
        pipeline.load_state(np.zeros(10), 100)
    with pytest.raises(InvalidParameterError):
        pipeline.load_state(np.zeros(H), -1)
    # Mid-warm-up state (fewer than H values, next_t == size) is legal.
    pipeline.load_state(np.zeros(10), 10)
    assert pipeline.t == 10


def test_load_state_discards_retained_history():
    values = campus_temperature(90, rng=7).values
    pipeline = OnlinePipeline(VariableThresholdingMetric(), H=H, grid=GRID)
    pipeline.feed_batch(values)
    pipeline.load_state(values[-H:], 90)
    pipeline.feed_batch(values[:20])
    view = pipeline.to_view("resumed")
    # Only post-restore rows: no stale t from before the rewind.
    assert view.times == list(range(90, 110))


def test_retain_history_flag():
    values = campus_temperature(80, rng=2).values
    pipeline = OnlinePipeline(
        VariableThresholdingMetric(), H=H, grid=GRID, retain_history=False
    )
    matrix = pipeline.feed_batch(values)
    assert len(matrix) == 80 - H
    with pytest.raises(InvalidParameterError):
        pipeline.to_view()
    with pytest.raises(InvalidParameterError):
        pipeline.forecasts()
    step = pipeline.feed(21.0)  # Per-value path still emits.
    assert step.row is not None
