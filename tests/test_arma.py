"""Tests for ARMA estimation and forecasting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    DataError,
    EstimationError,
    InvalidParameterError,
    NotFittedError,
)
from repro.timeseries.arma import ARMAModel, ARMAParams


class TestParams:
    def test_orders(self):
        params = ARMAParams(const=0.0, ar=np.array([0.5, 0.1]), ma=np.array([0.3]))
        assert params.p == 2
        assert params.q == 1

    def test_stationarity_check(self):
        assert ARMAParams(const=0.0, ar=np.array([0.5])).is_ar_stationary()
        assert not ARMAParams(const=0.0, ar=np.array([1.1])).is_ar_stationary()
        assert ARMAParams(const=0.0).is_ar_stationary()  # p=0 is stationary.


class TestFitAR:
    def test_recovers_ar1_coefficient(self):
        params = ARMAParams(const=2.0, ar=np.array([0.7]), sigma2=1.0)
        data = ARMAModel.simulate(params, 3000, rng=0)
        model = ARMAModel(p=1).fit(data)
        assert model.params_.ar[0] == pytest.approx(0.7, abs=0.05)
        # Implied process mean: const / (1 - phi1).
        implied_mean = model.params_.const / (1 - model.params_.ar[0])
        assert implied_mean == pytest.approx(2.0 / 0.3, rel=0.1)

    def test_recovers_ar2_coefficients(self):
        params = ARMAParams(
            const=0.0, ar=np.array([0.5, -0.3]), sigma2=1.0
        )
        data = ARMAModel.simulate(params, 5000, rng=1)
        model = ARMAModel(p=2).fit(data)
        np.testing.assert_allclose(model.params_.ar, [0.5, -0.3], atol=0.06)

    def test_mean_model_p0_q0(self):
        data = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        model = ARMAModel(p=0, q=0).fit(data)
        assert model.params_.const == pytest.approx(3.0)
        assert model.predict_next() == pytest.approx(3.0)

    def test_residual_variance_estimated(self):
        params = ARMAParams(const=0.0, ar=np.array([0.5]), sigma2=2.0)
        data = ARMAModel.simulate(params, 4000, rng=2)
        model = ARMAModel(p=1).fit(data)
        assert model.params_.sigma2 == pytest.approx(2.0, rel=0.15)

    def test_residuals_aligned_with_input(self):
        data = ARMAModel.simulate(
            ARMAParams(const=0.0, ar=np.array([0.5]), sigma2=1.0), 100, rng=3
        )
        model = ARMAModel(p=1).fit(data)
        assert model.residuals_.size == data.size
        assert model.residuals_[0] == 0.0  # Warm-up convention.


class TestFitARMA:
    def test_recovers_ma_coefficient_sign(self):
        params = ARMAParams(
            const=0.0, ar=np.array([0.6]), ma=np.array([0.4]), sigma2=1.0
        )
        data = ARMAModel.simulate(params, 8000, rng=4)
        model = ARMAModel(p=1, q=1).fit(data)
        assert model.params_.ar[0] == pytest.approx(0.6, abs=0.12)
        assert model.params_.ma[0] == pytest.approx(0.4, abs=0.15)

    def test_long_ar_order_override(self):
        data = ARMAModel.simulate(
            ARMAParams(const=0.0, ar=np.array([0.5]), ma=np.array([0.2]),
                       sigma2=1.0),
            500, rng=5,
        )
        model = ARMAModel(p=1, q=1, long_ar_order=8).fit(data)
        assert model.params_ is not None


class TestForecast:
    def test_predict_next_equals_manual_eq2(self):
        data = np.array([1.0, 2.0, 1.5, 2.5, 2.0, 3.0, 2.5, 3.5, 3.0, 4.0])
        model = ARMAModel(p=1).fit(data)
        params = model.params_
        expected = params.const + params.ar[0] * data[-1]
        assert model.predict_next() == pytest.approx(expected)

    def test_multistep_converges_to_process_mean(self):
        params = ARMAParams(const=1.0, ar=np.array([0.5]), sigma2=0.5)
        data = ARMAModel.simulate(params, 2000, rng=6)
        model = ARMAModel(p=1).fit(data)
        far = model.forecast(200)[-1]
        process_mean = model.params_.const / (1 - model.params_.ar[0])
        assert far == pytest.approx(process_mean, rel=0.05)

    def test_forecast_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            ARMAModel(p=1).predict_next()

    def test_forecast_steps_validation(self):
        data = np.arange(20.0)
        model = ARMAModel(p=1).fit(data)
        with pytest.raises(InvalidParameterError):
            model.forecast(0)


class TestValidation:
    def test_negative_orders_rejected(self):
        with pytest.raises(InvalidParameterError):
            ARMAModel(p=-1)

    def test_window_too_short(self):
        with pytest.raises(EstimationError):
            ARMAModel(p=3).fit(np.arange(4.0))

    def test_nan_input_rejected(self):
        with pytest.raises(DataError):
            ARMAModel(p=1).fit(np.array([1.0, np.nan, 2.0, 3.0, 4.0]))

    def test_constant_window_fits_without_error(self):
        model = ARMAModel(p=1).fit(np.full(30, 5.0))
        assert model.predict_next() == pytest.approx(5.0, abs=1e-6)


class TestSimulate:
    def test_reproducible_with_seed(self):
        params = ARMAParams(const=0.0, ar=np.array([0.5]), sigma2=1.0)
        a = ARMAModel.simulate(params, 50, rng=9)
        b = ARMAModel.simulate(params, 50, rng=9)
        np.testing.assert_array_equal(a, b)

    def test_custom_innovations_length_checked(self):
        params = ARMAParams(const=0.0, ar=np.array([0.5]), sigma2=1.0)
        with pytest.raises(DataError):
            ARMAModel.simulate(params, 50, innovations=np.zeros(10))

    def test_custom_innovations_used(self):
        params = ARMAParams(const=0.0, sigma2=1.0)
        out = ARMAModel.simulate(
            params, 5, burn_in=0, innovations=np.array([1.0, 2, 3, 4, 5])
        )
        np.testing.assert_array_equal(out, [1.0, 2, 3, 4, 5])

    def test_n_validation(self):
        with pytest.raises(InvalidParameterError):
            ARMAModel.simulate(ARMAParams(const=0.0), 0)
