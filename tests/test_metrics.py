"""Tests for the dynamic density metrics (UT, VT, ARMA-GARCH, Kalman-GARCH)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.gaussian import Gaussian
from repro.distributions.uniform import Uniform
from repro.exceptions import DataError, InvalidParameterError
from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.base import DensityForecast, DensitySeries
from repro.metrics.kalman_garch import KalmanGARCHMetric
from repro.metrics.registry import available_metrics, create_metric, register_metric
from repro.metrics.uniform_threshold import UniformThresholdingMetric
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.timeseries.series import TimeSeries


class TestDensityForecast:
    def test_contains(self):
        forecast = DensityForecast(
            t=0, mean=1.0, distribution=Gaussian(1.0, 1.0),
            lower=0.0, upper=2.0, volatility=1.0,
        )
        assert forecast.contains(1.5)
        assert not forecast.contains(2.5)


class TestDensitySeries:
    def test_ordering_enforced(self):
        def make(t):
            return DensityForecast(
                t=t, mean=0.0, distribution=Gaussian(0.0, 1.0),
                lower=-3, upper=3, volatility=1.0,
            )

        with pytest.raises(DataError):
            DensitySeries([make(5), make(5)])
        with pytest.raises(DataError):
            DensitySeries([make(5), make(3)])

    def test_vector_views(self, gaussian_forecasts):
        assert gaussian_forecasts.means.shape == (5,)
        assert gaussian_forecasts.volatilities.shape == (5,)
        assert list(gaussian_forecasts.times) == [60, 61, 62, 63, 64]

    def test_pit_values_in_unit_interval(self, campus_series):
        metric = VariableThresholdingMetric()
        forecasts = metric.run(campus_series, 40, step=25)
        z = forecasts.pit(campus_series)
        assert np.all((z >= 0.0) & (z <= 1.0))

    def test_pit_needs_realised_values(self):
        forecast = DensityForecast(
            t=100, mean=0.0, distribution=Gaussian(0.0, 1.0),
            lower=-3, upper=3, volatility=1.0,
        )
        short = TimeSeries(np.zeros(10) + np.arange(10))
        with pytest.raises(DataError):
            DensitySeries([forecast]).pit(short)

    def test_coverage(self, simple_series):
        metric = VariableThresholdingMetric(kappa=3.0)
        forecasts = metric.run(simple_series, 30)
        # kappa=3 Gaussian bounds should cover nearly all realised values.
        assert forecasts.coverage(simple_series) > 0.9


class TestUniformThresholding:
    def test_emits_uniform_centred_on_forecast(self, simple_series):
        metric = UniformThresholdingMetric(threshold=0.5)
        forecast = metric.infer(simple_series.values[:60], t=60)
        assert isinstance(forecast.distribution, Uniform)
        assert forecast.upper - forecast.lower == pytest.approx(1.0)
        assert forecast.distribution.mean() == pytest.approx(forecast.mean)

    def test_threshold_validation(self):
        with pytest.raises(InvalidParameterError):
            UniformThresholdingMetric(threshold=0.0)

    def test_tracks_linear_trend(self):
        values = np.arange(50, dtype=float)
        metric = UniformThresholdingMetric(threshold=1.0)
        forecast = metric.infer(values, t=50)
        assert forecast.mean == pytest.approx(50.0, abs=0.5)


class TestVariableThresholding:
    def test_emits_gaussian_with_window_variance(self, rng):
        window = rng.normal(10.0, 2.0, size=80)
        metric = VariableThresholdingMetric()
        forecast = metric.infer(window, t=80)
        assert isinstance(forecast.distribution, Gaussian)
        assert forecast.volatility == pytest.approx(np.std(window, ddof=1), rel=1e-6)

    def test_constant_window_variance_floored(self):
        metric = VariableThresholdingMetric()
        forecast = metric.infer(np.full(30, 7.0), t=30)
        assert forecast.volatility > 0.0

    def test_kappa_bounds(self, rng):
        window = rng.normal(size=60)
        metric = VariableThresholdingMetric(kappa=2.0)
        forecast = metric.infer(window, t=60)
        assert forecast.upper - forecast.mean == pytest.approx(
            2.0 * forecast.volatility
        )


class TestARMAGARCH:
    def test_gaussian_output_with_positive_volatility(self, campus_series):
        metric = ARMAGARCHMetric()
        forecast = metric.infer(campus_series.values[:80], t=80)
        assert isinstance(forecast.distribution, Gaussian)
        assert forecast.volatility > 0.0
        assert forecast.lower < forecast.mean < forecast.upper

    def test_kappa_scaling_of_bounds(self, campus_series):
        window = campus_series.values[:60]
        narrow = ARMAGARCHMetric(kappa=1.0, warm_start=False).infer(window, 60)
        wide = ARMAGARCHMetric(kappa=3.0, warm_start=False).infer(window, 60)
        assert wide.upper - wide.lower == pytest.approx(
            3.0 * (narrow.upper - narrow.lower), rel=1e-6
        )

    def test_volatility_responds_to_regime(self, rng):
        """A turbulent window must yield a wider density than a calm one."""
        calm = 10.0 + 0.01 * rng.standard_normal(60)
        turbulent = 10.0 + 1.5 * rng.standard_normal(60)
        metric = ARMAGARCHMetric(warm_start=False)
        sigma_calm = metric.infer(calm, 60).volatility
        metric.reset()
        sigma_turbulent = metric.infer(turbulent, 60).volatility
        assert sigma_turbulent > 5.0 * sigma_calm

    def test_warm_start_does_not_change_quality_materially(self, campus_series):
        from repro.evaluation.density_distance import density_distance

        warm = ARMAGARCHMetric(warm_start=True).run(campus_series, 50, step=10)
        cold = ARMAGARCHMetric(warm_start=False).run(campus_series, 50, step=10)
        dd_warm = density_distance(warm, campus_series)
        dd_cold = density_distance(cold, campus_series)
        assert dd_warm == pytest.approx(dd_cold, abs=0.25)

    def test_run_rejects_window_below_minimum(self, campus_series):
        metric = ARMAGARCHMetric(p=2, q=2)
        with pytest.raises(InvalidParameterError):
            metric.run(campus_series, H=3)

    def test_reset_clears_warm_state(self):
        metric = ARMAGARCHMetric()
        metric._last_garch_params = "sentinel"
        metric.reset()
        assert metric._last_garch_params is None


class TestKalmanGARCH:
    def test_gaussian_output(self, campus_series):
        metric = KalmanGARCHMetric(em_max_iter=5)
        forecast = metric.infer(campus_series.values[:60], t=60)
        assert isinstance(forecast.distribution, Gaussian)
        assert forecast.volatility > 0.0

    def test_tracks_level(self, rng):
        window = np.full(50, 20.0) + rng.normal(0, 0.1, 50)
        metric = KalmanGARCHMetric(em_max_iter=10)
        forecast = metric.infer(window, t=50)
        assert forecast.mean == pytest.approx(20.0, abs=0.5)

    def test_em_iter_validation(self):
        with pytest.raises(InvalidParameterError):
            KalmanGARCHMetric(em_max_iter=0)


class TestRunLoop:
    def test_run_times_match_step(self, campus_series):
        metric = VariableThresholdingMetric()
        forecasts = metric.run(campus_series, 40, step=50)
        times = list(forecasts.times)
        assert times == list(range(40, len(campus_series), 50))

    def test_run_empty_range_rejected(self, campus_series):
        metric = VariableThresholdingMetric()
        with pytest.raises(DataError):
            metric.run(campus_series, 40, start=len(campus_series), stop=None)


class TestRegistry:
    def test_all_builtins_available(self):
        names = available_metrics()
        for expected in (
            "uniform_threshold", "variable_threshold", "arma_garch",
            "kalman_garch", "cgarch",
        ):
            assert expected in names

    def test_create_with_params(self):
        metric = create_metric("arma_garch", p=2, kappa=2.5)
        assert metric.p == 2
        assert metric.kappa == 2.5

    def test_aliases(self):
        assert isinstance(create_metric("ut", threshold=1.0), UniformThresholdingMetric)
        assert isinstance(create_metric("VT"), VariableThresholdingMetric)
        assert isinstance(create_metric("garch"), ARMAGARCHMetric)

    def test_unknown_metric_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown metric"):
            create_metric("no_such_metric")

    def test_bad_params_reported(self):
        with pytest.raises(InvalidParameterError, match="invalid parameters"):
            create_metric("arma_garch", nonsense=True)

    def test_custom_registration(self):
        register_metric("custom_vt", VariableThresholdingMetric)
        assert isinstance(create_metric("custom_vt"), VariableThresholdingMetric)
