"""Tests for the synthetic datasets, error injection and loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.errors import inject_errors
from repro.data.loaders import dataset_summary, load_series_csv, save_series_csv
from repro.data.synthetic import (
    CAMPUS_SAMPLES,
    CAR_SAMPLES,
    campus_temperature,
    car_gps,
    make_dataset,
)
from repro.exceptions import InvalidParameterError
from repro.timeseries.stats import rolling_variance


class TestCampusData:
    def test_shape_and_interval(self):
        series = campus_temperature(1000, rng=0)
        assert len(series) == 1000
        np.testing.assert_allclose(np.diff(series.timestamps), 120.0)

    def test_plausible_temperature_range(self):
        series = campus_temperature(3000, rng=0)
        assert -20.0 < series.values.min() < series.values.max() < 50.0

    def test_diurnal_cycle_present(self):
        series = campus_temperature(1440, rng=0)  # Two days.
        day = 720  # Samples per day at 2 minutes.
        first, second = series.values[:day], series.values[day : 2 * day]
        # Same-phase correlation across days must be strongly positive.
        corr = np.corrcoef(first, second)[0, 1]
        assert corr > 0.5

    def test_volatility_regimes_exist(self):
        series = campus_temperature(3000, rng=0)
        variances = rolling_variance(series.values, 30)
        assert np.percentile(variances, 90) > 3.0 * np.percentile(variances, 10)

    def test_reproducible(self):
        a = campus_temperature(100, rng=5).values
        b = campus_temperature(100, rng=5).values
        np.testing.assert_array_equal(a, b)

    def test_default_size_matches_table2(self):
        # Do not generate the full series here; just check the constant.
        assert CAMPUS_SAMPLES == 18031


class TestCarData:
    def test_shape_and_mixed_intervals(self):
        series = car_gps(1000, rng=0)
        assert len(series) == 1000
        intervals = np.diff(series.timestamps)
        assert set(np.unique(intervals)).issubset({1.0, 2.0})

    def test_contains_stops(self):
        """The drive model must produce near-zero-velocity stretches."""
        series = car_gps(3000, rng=0)
        speed = np.abs(np.diff(series.values))
        smoothed = np.convolve(speed, np.ones(20) / 20.0, mode="valid")
        # During a stop only GPS noise moves the fix: mean |diff of noise|
        # is about 2 * sigma_gps / sqrt(pi) ~ 3.8 m at +-10 m accuracy.
        assert smoothed.min() < 5.0  # A stop (GPS noise only).
        assert smoothed.max() > 8.0  # A cruise segment.

    def test_default_size_matches_table2(self):
        assert CAR_SAMPLES == 10473


class TestMakeDataset:
    def test_scaling(self):
        series = make_dataset("campus", scale=0.1, rng=0)
        assert len(series) == int(CAMPUS_SAMPLES * 0.1)

    def test_name_normalisation(self):
        assert make_dataset("campus-data", scale=0.05).name == "campus-data"
        assert make_dataset("CAR", scale=0.05).name == "car-data"

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_dataset("weather")

    def test_scale_domain(self):
        with pytest.raises(InvalidParameterError):
            make_dataset("campus", scale=0.0)
        with pytest.raises(InvalidParameterError):
            make_dataset("campus", scale=1.5)

    def test_minimum_size_floor(self):
        assert len(make_dataset("campus", scale=0.001)) >= 400


class TestInjectErrors:
    def test_count_and_indices(self):
        series = campus_temperature(500, rng=0)
        result = inject_errors(series, 10, rng=1)
        assert result.error_indices.size == 10
        assert result.series.name.endswith("+errors")

    def test_spikes_are_large(self):
        series = campus_temperature(500, rng=0)
        result = inject_errors(series, 5, magnitude=10.0, rng=2)
        spread = np.std(series.values, ddof=1)
        deviations = np.abs(
            result.series.values[result.error_indices]
            - np.mean(series.values)
        )
        assert np.all(deviations > 5.0 * spread)

    def test_originals_recorded(self):
        series = campus_temperature(300, rng=0)
        result = inject_errors(series, 4, rng=3)
        np.testing.assert_array_equal(
            result.original_values, series.values[result.error_indices]
        )

    def test_protect_prefix_respected(self):
        series = campus_temperature(300, rng=0)
        result = inject_errors(series, 20, rng=4, protect_prefix=100)
        assert np.all(result.error_indices >= 100)

    def test_bursts_are_consecutive(self):
        series = campus_temperature(2000, rng=0)
        result = inject_errors(series, 40, max_burst=4, rng=5)
        assert result.error_indices.size == 40
        gaps = np.diff(result.error_indices)
        assert np.any(gaps == 1)  # At least one multi-value burst.

    def test_burst_signs_consistent(self):
        series = campus_temperature(2000, rng=0)
        result = inject_errors(series, 30, max_burst=5, rng=6)
        center = float(np.mean(series.values))
        corrupted = result.series.values
        indices = result.error_indices
        for left, right in zip(indices, indices[1:]):
            if right - left == 1:  # Same burst.
                assert np.sign(corrupted[left] - center) == np.sign(
                    corrupted[right] - center
                )

    def test_too_many_errors_rejected(self):
        series = campus_temperature(400, rng=0)
        with pytest.raises(InvalidParameterError):
            inject_errors(series, 500, rng=7)

    def test_validation(self):
        series = campus_temperature(400, rng=0)
        with pytest.raises(InvalidParameterError):
            inject_errors(series, 0)
        with pytest.raises(InvalidParameterError):
            inject_errors(series, 1, magnitude=0.0)
        with pytest.raises(InvalidParameterError):
            inject_errors(series, 1, max_burst=0)

    def test_original_series_untouched(self):
        series = campus_temperature(300, rng=0)
        before = series.values.copy()
        inject_errors(series, 5, rng=8)
        np.testing.assert_array_equal(series.values, before)


class TestLoaders:
    def test_series_roundtrip(self, tmp_path):
        series = campus_temperature(50, rng=0)
        path = tmp_path / "series.csv"
        save_series_csv(series, path)
        loaded = load_series_csv(path, name="campus-data")
        np.testing.assert_array_equal(loaded.values, series.values)
        np.testing.assert_array_equal(loaded.timestamps, series.timestamps)

    def test_dataset_summary_rows(self):
        rows = dataset_summary(scale=0.03)
        assert len(rows) == 2
        assert rows[0]["dataset"] == "campus-data"
        assert rows[1]["dataset"] == "car-data"
        assert all("accuracy" in row for row in rows)
