"""Segment synopses: computation, persistence, pruning, and APPROX.

The contract under test, layer by layer:

* :func:`~repro.store.binary.compute_view_synopsis` records *sound*
  per-segment facts — bounds that brute force over the columns confirms;
* every write path (dynamic append, static ``save_view``) persists the
  synopsis and every read path surfaces it through
  :class:`~repro.store.catalog.SeriesSnapshot`;
* ``Catalog.synopsize`` backfills catalogs written before synopses
  existed, idempotently;
* pruned exact execution is bit-identical to unpruned execution, and the
  pruning counters account for every segment;
* ``SELECT APPROX`` answers from synopses alone, and every estimate's
  proven interval really contains the exact answer.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.db.queries import expected_value_query
from repro.db.prob_view import ProbabilisticView
from repro.db.stream_queries import exceedance_vector
from repro.server.app import QueryServer, ServerThread
from repro.server.client import Client
from repro.service import CatalogQueryService
from repro.service.planner import plan_select
from repro.service.synopsis import estimate_series, prune_segments
from repro.store import Catalog
from repro.store.binary import (
    EXC_SKETCH_EDGES,
    PROB_HIST_BUCKETS,
    SYNOPSIS_VERSION,
    compute_view_synopsis,
    load_segment_synopsis,
)
from repro.view.omega import OmegaGrid
from repro.view.sql import SelectQuery, parse_statement

H = 16
GRID = OmegaGrid(delta=0.5, n=4)


def _random_view(name: str, times: int, seed: int, base: float = 20.0):
    """A small multi-alternative view with known columns."""
    rng = np.random.default_rng(seed)
    t, low, high, prob, labels = [], [], [], [], []
    for time in range(times):
        k = int(rng.integers(1, 4))
        raw = rng.dirichlet(np.ones(k)) * rng.uniform(0.5, 0.98)
        edge = base + rng.uniform(-2.0, 2.0)
        for p in raw:
            width = rng.uniform(0.25, 2.0)
            t.append(time)
            low.append(edge)
            high.append(edge + width)
            edge += width
            prob.append(float(p))
            labels.append(f"w{time}")
    return ProbabilisticView.from_columns(
        name,
        np.array(t, dtype=np.int64),
        np.array(low),
        np.array(high),
        np.array(prob),
        labels,
    )


def _build_catalog(root, series=3, layout="npz") -> Catalog:
    catalog = Catalog(root, segment_layout=layout)
    rng = np.random.default_rng(11)
    for index in range(series):
        series_id = f"s-{index}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=H, grid=GRID
        )
        values = 20.0 + 0.05 * index + np.cumsum(
            rng.normal(0.0, 0.05, size=60)
        )
        for chunk in np.array_split(values, 3):
            catalog.append(series_id, chunk)
    return catalog


def _strip_synopses(root) -> None:
    """Simulate a catalog written before synopses existed."""
    for series_dir in root.iterdir():
        meta_path = series_dir / "series.json"
        if not meta_path.is_file():
            continue
        meta = json.loads(meta_path.read_text())
        meta.pop("synopses", None)
        meta_path.write_text(json.dumps(meta))
        for sidecar in series_dir.glob("*.synopsis.json"):
            sidecar.unlink()
    manifest = root / "catalog.json"
    payload = json.loads(manifest.read_text())
    payload.pop("synopsis_version", None)
    manifest.write_text(json.dumps(payload))


class TestComputeSynopsis:
    def test_facts_match_brute_force(self):
        view = _random_view("facts", times=14, seed=5)
        cols = view.columns
        syn = compute_view_synopsis(
            cols.t, cols.low, cols.high, cols.probability
        )
        assert syn["version"] == SYNOPSIS_VERSION
        assert syn["rows"] == len(cols.t)
        assert syn["times"] == len(np.unique(cols.t))
        assert syn["t_min"] == int(cols.t.min())
        assert syn["t_max"] == int(cols.t.max())
        assert syn["prob_max"] == float(cols.probability.max())
        assert syn["low_min"] == float(cols.low.min())
        assert syn["high_max"] == float(cols.high.max())
        # Per-time mass bound.
        masses = [
            cols.probability[cols.t == time].sum()
            for time in np.unique(cols.t)
        ]
        assert syn["mass_max"] == pytest.approx(max(masses))

    def test_prob_hist_membership_is_exact(self):
        view = _random_view("hist", times=10, seed=6)
        probability = view.columns.probability
        syn = compute_view_synopsis(
            view.columns.t,
            view.columns.low,
            view.columns.high,
            probability,
        )
        hist = syn["prob_hist"]
        assert sum(hist) == syn["rows"]
        buckets = PROB_HIST_BUCKETS
        for j in range(buckets):
            lo = j / buckets
            hi = (j + 1) / buckets
            if j == buckets - 1:
                members = (probability >= lo) & (probability <= 1.0)
            else:
                members = (probability >= lo) & (probability < hi)
            assert hist[j] == int(members.sum())

    def test_exceedance_sketch_bounds_the_true_curve(self):
        view = _random_view("sketch", times=12, seed=7)
        syn = compute_view_synopsis(
            view.columns.t,
            view.columns.low,
            view.columns.high,
            view.columns.probability,
        )
        edges = syn["exc_edges"]
        values = syn["exc_max"]
        assert len(edges) == len(values) == EXC_SKETCH_EDGES
        # Non-increasing, and exact at the grid edges.
        assert all(b <= a for a, b in zip(values, values[1:]))
        for edge, value in zip(edges, values):
            assert value == pytest.approx(
                float(exceedance_vector(view, edge).max())
            )

    def test_ev_fields_match_expected_value_query(self):
        view = _random_view("ev", times=9, seed=8)
        syn = compute_view_synopsis(
            view.columns.t,
            view.columns.low,
            view.columns.high,
            view.columns.probability,
        )
        exact = expected_value_query(view)
        assert syn["ev_sum"] == pytest.approx(sum(exact.values()))
        assert syn["ev_min"] == pytest.approx(min(exact.values()))
        assert syn["ev_max"] == pytest.approx(max(exact.values()))

    def test_empty_view(self):
        empty = np.array([], dtype=np.int64)
        syn = compute_view_synopsis(
            empty, empty.astype(float), empty.astype(float),
            empty.astype(float),
        )
        assert syn["rows"] == 0
        assert syn["times"] == 0


class TestPersistence:
    @pytest.mark.parametrize("layout", ["npz", "v2"])
    def test_appends_write_synopses(self, tmp_path, layout):
        catalog = _build_catalog(tmp_path / "cat", series=1, layout=layout)
        snapshot = Catalog(catalog.root).snapshot("s-0")
        synopses = snapshot.segment_synopses()
        assert len(synopses) == len(snapshot.segments) == 3
        assert all(s is not None for s in synopses)
        assert all(s["version"] == SYNOPSIS_VERSION for s in synopses)
        # The same synopsis is recoverable from the segment itself.
        for name, stored in zip(snapshot.segments, synopses):
            assert load_segment_synopsis(snapshot.directory / name) == stored

    def test_save_view_writes_synopsis(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        catalog.save_view("static", _random_view("static", times=8, seed=9))
        synopses = catalog.snapshot("static").segment_synopses()
        assert len(synopses) == 1 and synopses[0] is not None
        assert synopses[0]["times"] == 8

    def test_manifest_records_synopsis_version(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        manifest = json.loads((catalog.root / "catalog.json").read_text())
        assert manifest["synopsis_version"] == SYNOPSIS_VERSION

    def test_unknown_synopsis_version_reads_as_none(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=1)
        meta_path = catalog.root / "s-0" / "series.json"
        meta = json.loads(meta_path.read_text())
        for name in meta["synopses"]:
            meta["synopses"][name]["version"] = SYNOPSIS_VERSION + 1
        meta_path.write_text(json.dumps(meta))
        snapshot = Catalog(catalog.root).snapshot("s-0")
        assert all(s is None for s in snapshot.segment_synopses())


class TestSynopsize:
    def test_backfill_restores_stripped_catalog(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=2)
        before = {
            sid: Catalog(catalog.root).snapshot(sid).segment_synopses()
            for sid in ("s-0", "s-1")
        }
        _strip_synopses(catalog.root)
        stripped = Catalog(catalog.root)
        assert all(
            s is None
            for s in stripped.snapshot("s-0").segment_synopses()
        )
        written = stripped.synopsize()
        assert written == {"s-0": 3, "s-1": 3}
        after = Catalog(catalog.root)
        for sid, reference in before.items():
            assert after.snapshot(sid).segment_synopses() == reference
        manifest = json.loads((catalog.root / "catalog.json").read_text())
        assert manifest["synopsis_version"] == SYNOPSIS_VERSION

    def test_idempotent(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=2)
        assert catalog.synopsize() == {"s-0": 0, "s-1": 0}

    def test_pattern_limits_backfill(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=2)
        _strip_synopses(catalog.root)
        written = Catalog(catalog.root).synopsize("s-1")
        assert written == {"s-1": 3}

    def test_append_after_backfill_keeps_synopses(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=1)
        _strip_synopses(catalog.root)
        reopened = Catalog(catalog.root)
        reopened.synopsize()
        reopened.append("s-0", 20.0 + 0.01 * np.arange(30, dtype=float))
        synopses = Catalog(catalog.root).snapshot("s-0").segment_synopses()
        assert all(s is not None for s in synopses)
        assert len(synopses) == 4


class TestPruning:
    def test_prune_preserves_segment_order(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=1)
        snapshot = catalog.snapshot("s-0")
        surviving = prune_segments(snapshot, "expected_value", (), None, None)
        assert surviving == snapshot.segments
        # A WHERE range inside the last segment drops the earlier ones
        # while keeping stored order.
        t_hi = max(
            s["t_max"] for s in snapshot.segment_synopses() if s
        )
        pruned = prune_segments(
            snapshot, "expected_value", (), float(t_hi), float(t_hi)
        )
        assert pruned and list(pruned) == [
            name
            for name in snapshot.segments
            if name in pruned
        ]
        assert len(pruned) < len(snapshot.segments)

    def test_unsynopsized_segment_always_survives(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=1)
        _strip_synopses(catalog.root)
        snapshot = Catalog(catalog.root).snapshot("s-0")
        surviving = prune_segments(
            snapshot, "threshold", (0.999,), 1e9, 2e9
        )
        assert surviving == snapshot.segments

    def test_plan_stats_account_for_every_segment(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=3)
        query = parse_statement(
            f"SELECT expected_value FROM CATALOG '{catalog.root}' "
            f"WHERE t BETWEEN 40 AND 50"
        )
        plan = plan_select(catalog, query)
        stats = plan.stats
        assert stats.segments_total == 9
        assert (
            stats.segments_scanned + stats.segments_pruned
            == stats.segments_total
        )
        assert stats.segments_pruned > 0
        assert stats.series_matched == 3

    def test_executor_counters_accumulate(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=2)
        statement = (
            f"SELECT expected_value FROM CATALOG '{catalog.root}' "
            f"WHERE t BETWEEN 40 AND 50"
        )
        with CatalogQueryService(catalog, backend="sequential") as service:
            first = service.execute(statement)
            service.execute(statement)
            service.execute(
                f"SELECT APPROX expected_value FROM CATALOG "
                f"'{catalog.root}'"
            )
            counters = service.execution_stats()
        assert counters["queries"] == 3
        assert counters["approx_queries"] == 1
        assert first.stats is not None
        assert (
            counters["segments_pruned"] == 2 * first.stats.segments_pruned
        )

    def test_pruning_off_scans_everything(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=2)
        statement = (
            f"SELECT expected_value FROM CATALOG '{catalog.root}' "
            f"WHERE t BETWEEN 40 AND 50"
        )
        with CatalogQueryService(
            catalog, backend="sequential", pruning=False
        ) as service:
            result = service.execute(statement)
        assert result.stats is not None
        assert result.stats.segments_pruned == 0
        assert (
            result.stats.segments_scanned == result.stats.segments_total
        )


class TestApprox:
    def test_grammar_round_trip(self, tmp_path):
        statement = parse_statement(
            f"SELECT APPROX exceedance(21.0) FROM CATALOG "
            f"'{tmp_path}' SERIES 's*' TOP 2"
        )
        assert isinstance(statement, SelectQuery)
        assert statement.approx is True
        assert statement.aggregate == "exceedance"
        plain = parse_statement(
            f"SELECT exceedance(21.0) FROM CATALOG '{tmp_path}'"
        )
        assert plain.approx is False

    @pytest.mark.parametrize(
        "body",
        [
            "threshold(0.3)",
            "expected_value",
            "exceedance(20.5)",
            "time_above(20.5, 3)",
        ],
    )
    def test_estimate_interval_contains_exact_score(self, tmp_path, body):
        catalog = _build_catalog(tmp_path / "cat", series=3)
        suffix = " WHERE t BETWEEN 12 AND 44"
        with CatalogQueryService(catalog, backend="sequential") as service:
            exact = service.execute(
                f"SELECT {body} FROM CATALOG '{catalog.root}'" + suffix
            )
            approx = service.execute(
                f"SELECT APPROX {body} FROM CATALOG '{catalog.root}'"
                + suffix
            )
        assert approx.approx
        exact_scores = exact.scores()
        for entry in approx.results:
            payload = entry.result
            assert set(payload) == {
                "estimate", "error_bound", "lower", "upper",
            }
            assert payload["error_bound"] >= 0.0
            assert (
                payload["lower"] <= payload["estimate"] <= payload["upper"]
            )
            score = exact_scores[entry.series_id]
            assert payload["lower"] - 1e-9 <= score <= payload["upper"] + 1e-9
            assert abs(score - payload["estimate"]) <= (
                payload["error_bound"] + 1e-9
            )

    def test_approx_without_synopses_falls_back_lazily(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=2)
        _strip_synopses(catalog.root)
        with CatalogQueryService(
            Catalog(catalog.root), backend="sequential"
        ) as service:
            result = service.execute(
                f"SELECT APPROX expected_value FROM CATALOG "
                f"'{catalog.root}'"
            )
        assert result.approx
        assert result.stats is not None
        assert result.stats.segments_scanned == 6  # All lazily loaded.
        assert all(
            entry.result["error_bound"] >= 0.0 for entry in result.results
        )

    def test_estimate_series_rejects_unknown_aggregate(self):
        with pytest.raises(ValueError, match="no APPROX estimator"):
            estimate_series("median", (), [], None, None)


class TestServerSurface:
    def test_wire_results_and_stats_counters(self, tmp_path):
        catalog = _build_catalog(tmp_path / "cat", series=2)
        server = QueryServer(catalog, port=0, backend="sequential")
        with ServerThread(server) as (host, port), Client(host, port) as client:
            statement = (
                f"SELECT exceedance(20.3) FROM CATALOG '{catalog.root}' "
                f"WHERE t BETWEEN 40 AND 55"
            )
            exact = client.query(statement)
            assert exact["pruning"]["segments_pruned"] > 0
            assert "approx" not in exact
            approx = client.query(
                statement.replace("SELECT ", "SELECT APPROX ", 1)
            )
            assert approx["approx"] is True
            for entry in approx["results"]:
                assert set(entry["approx"]) == {
                    "estimate", "error_bound", "lower", "upper",
                }
            stats = client.stats()
            assert stats["pruning"]["queries"] == 2
            assert stats["pruning"]["approx_queries"] == 1
            assert stats["pruning"]["segments_pruned"] > 0
