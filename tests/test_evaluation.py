"""Tests for PIT, density distance and the ARCH-effect test."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.gaussian import Gaussian
from repro.evaluation.density_distance import (
    density_distance,
    density_distance_from_pit,
)
from repro.evaluation.pit import probability_integral_transform
from repro.evaluation.volatility_test import engle_arch_test, rolling_arch_test
from repro.exceptions import DataError, InvalidParameterError
from repro.metrics.base import DensityForecast, DensitySeries
from repro.timeseries.garch import GARCHModel, GARCHParams
from repro.timeseries.series import TimeSeries


def _true_model_forecasts(n, rng):
    """Forecasts that *are* the generating model: PIT must be uniform."""
    sigmas = 0.5 + rng.uniform(0.0, 2.0, size=n)
    means = rng.normal(0.0, 5.0, size=n)
    values = means + sigmas * rng.standard_normal(n)
    forecasts = [
        DensityForecast(
            t=i, mean=float(means[i]),
            distribution=Gaussian(float(means[i]), float(sigmas[i]) ** 2),
            lower=float(means[i] - 3 * sigmas[i]),
            upper=float(means[i] + 3 * sigmas[i]),
            volatility=float(sigmas[i]),
        )
        for i in range(n)
    ]
    return DensitySeries(forecasts), TimeSeries(values)


class TestPIT:
    def test_true_model_gives_uniform_pit(self, rng):
        forecasts, series = _true_model_forecasts(3000, rng)
        z = probability_integral_transform(forecasts, series)
        # Kolmogorov-Smirnov style check on the empirical CDF.
        grid = np.sort(z)
        uniform = (np.arange(1, z.size + 1)) / z.size
        assert float(np.max(np.abs(grid - uniform))) < 0.03

    def test_misscaled_model_gives_clustered_pit(self, rng):
        forecasts, series = _true_model_forecasts(1000, rng)
        # Inflate every variance 25x: transforms cluster around 0.5.
        inflated = DensitySeries([
            DensityForecast(
                t=f.t, mean=f.mean,
                distribution=Gaussian(f.mean, 25.0 * f.distribution.sigma2),
                lower=f.lower, upper=f.upper, volatility=5.0 * f.volatility,
            )
            for f in forecasts
        ])
        z = probability_integral_transform(inflated, series)
        assert float(np.std(z)) < 0.12


class TestDensityDistance:
    def test_uniform_pit_scores_near_zero(self):
        z = np.linspace(0.001, 0.999, 5000)
        assert density_distance_from_pit(z) < 0.05

    def test_clustered_pit_scores_high(self):
        z = np.full(1000, 0.5)
        assert density_distance_from_pit(z) > 2.0

    def test_one_sided_pit_scores_highest(self):
        z = np.full(1000, 0.999)
        assert density_distance_from_pit(z) > 4.0

    def test_better_calibration_scores_lower(self, rng):
        forecasts, series = _true_model_forecasts(2000, rng)
        good = density_distance(forecasts, series)
        inflated = DensitySeries([
            DensityForecast(
                t=f.t, mean=f.mean,
                distribution=Gaussian(f.mean, 25.0 * f.distribution.sigma2),
                lower=f.lower, upper=f.upper, volatility=5.0 * f.volatility,
            )
            for f in forecasts
        ])
        bad = density_distance(inflated, series)
        assert bad > 3.0 * good

    def test_out_of_range_pit_rejected(self):
        with pytest.raises(DataError):
            density_distance_from_pit(np.array([0.5, 1.2]))

    def test_n_bins_validation(self):
        with pytest.raises(InvalidParameterError):
            density_distance_from_pit(np.array([0.5]), n_bins=1)


class TestEngleArchTest:
    def test_garch_errors_reject_iid(self):
        params = GARCHParams(
            omega=0.1, alpha=np.array([0.3]), beta=np.array([0.6])
        )
        shocks = GARCHModel.simulate(params, 3000, rng=0)
        result = engle_arch_test(shocks, m=2)
        assert result.reject_iid
        assert result.p_value < 0.01

    def test_iid_errors_accept_null(self, rng):
        result = engle_arch_test(rng.standard_normal(3000), m=2)
        assert not result.reject_iid

    def test_statistic_positive_and_critical_matches_chi2(self):
        from scipy import stats as scipy_stats

        params = GARCHParams(
            omega=0.1, alpha=np.array([0.3]), beta=np.array([0.5])
        )
        shocks = GARCHModel.simulate(params, 500, rng=1)
        result = engle_arch_test(shocks, m=3, alpha=0.05)
        assert result.critical_value == pytest.approx(
            scipy_stats.chi2.ppf(0.95, df=3)
        )

    def test_degenerate_window_gives_infinite_statistic(self):
        result = engle_arch_test(np.zeros(50), m=1)
        assert result.statistic == float("inf")
        assert result.reject_iid

    def test_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            engle_arch_test(rng.standard_normal(100), m=0)
        with pytest.raises(InvalidParameterError):
            engle_arch_test(rng.standard_normal(100), m=1, alpha=1.5)
        with pytest.raises(DataError):
            engle_arch_test(rng.standard_normal(4), m=2)


class TestRollingArchTest:
    def test_heteroskedastic_series_rejects(self):
        params = GARCHParams(
            omega=0.1, alpha=np.array([0.35]), beta=np.array([0.55])
        )
        shocks = GARCHModel.simulate(params, 3000, rng=2)
        series = TimeSeries(np.asarray(shocks))
        result = rolling_arch_test(series, m=1, H=180, n_windows=40)
        assert result.reject_iid

    def test_homoskedastic_series_accepts(self, rng):
        series = TimeSeries(rng.standard_normal(3000))
        result = rolling_arch_test(series, m=1, H=180, n_windows=40)
        assert not result.reject_iid

    def test_window_validation(self, rng):
        series = TimeSeries(rng.standard_normal(100))
        with pytest.raises(InvalidParameterError):
            rolling_arch_test(series, m=8, H=10)
