"""Property-based guarantees for time-of-knowledge revisions.

Over randomly built revision chains (row layouts, overlap patterns,
knowledge-time gaps) the bitemporal contract must hold:

* ``AS OF`` the latest knowledge time is **bit-identical** to the
  default (no clause) execution;
* replaying the chain — ``AS OF k`` against the fully revised catalog —
  equals feeding the same revisions into a fresh catalog in knowledge
  order and querying it directly, at every recorded knowledge time;
* shadowed-segment visibility never changes exact answers across the
  sequential / thread / process backends, with and without pruning.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.service import CatalogQueryService
from repro.store import Catalog
from repro.util.jsonio import canonical_dumps

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

_counter = iter(range(10**9))


@st.composite
def chain_spec(draw):
    """A base series plus a random chain of overlapping revisions."""
    length = draw(st.integers(min_value=6, max_value=14))
    revisions = []
    knowledge = 0
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        start = draw(st.integers(min_value=0, max_value=length - 2))
        span = draw(st.integers(min_value=1, max_value=length - start))
        knowledge += draw(st.integers(min_value=1, max_value=3))
        revisions.append({
            "start": start,
            "span": span,
            "knowledge": knowledge,
            "shift": draw(st.integers(min_value=-5, max_value=15)),
        })
    return {
        "length": length,
        "base_low": draw(
            st.floats(min_value=15.0, max_value=25.0, allow_nan=False)
        ),
        "revisions": revisions,
    }


def _base_view(spec) -> ProbabilisticView:
    return ProbabilisticView("s", [
        ProbTuple(
            t,
            spec["base_low"] + 0.1 * t,
            spec["base_low"] + 0.1 * t + 1.0,
            0.9,
            "base",
        )
        for t in range(spec["length"])
    ])


def _revision_view(spec, rev, index) -> ProbabilisticView:
    return ProbabilisticView("s", [
        ProbTuple(
            t,
            spec["base_low"] + rev["shift"],
            spec["base_low"] + rev["shift"] + 1.0,
            0.85,
            f"rev{index}",
        )
        for t in range(rev["start"], rev["start"] + rev["span"])
    ])


def _build(root, spec, upto=None) -> Catalog:
    """The catalog after applying revisions with knowledge <= ``upto``."""
    catalog = Catalog(root)
    catalog.save_view("s", _base_view(spec))
    for index, rev in enumerate(spec["revisions"]):
        if upto is not None and rev["knowledge"] > upto:
            break
        catalog.revise(
            "s", _revision_view(spec, rev, index),
            knowledge_time=rev["knowledge"],
        )
    return catalog


def _answer(service, statement) -> str:
    payload = service.execute(statement).to_dict()
    payload.pop("pruning", None)
    return canonical_dumps(payload)


_STATEMENTS = st.sampled_from([
    "SELECT exceedance(21.0) FROM CATALOG '{root}'{suffix}",
    "SELECT expected_value FROM CATALOG '{root}'{suffix}",
    "SELECT threshold(0.5) FROM CATALOG '{root}'{suffix}",
    "SIMULATE 2 SEED 5 FROM CATALOG '{root}'{suffix}",
])


class TestAsOfProperties:
    @given(spec=chain_spec(), template=_STATEMENTS)
    @settings(max_examples=25, **_SETTINGS)
    def test_as_of_latest_bit_identical_to_default(
        self, tmp_path_factory, spec, template
    ):
        root = tmp_path_factory.mktemp("prop") / f"c{next(_counter)}"
        catalog = _build(root, spec)
        latest = spec["revisions"][-1]["knowledge"]
        service = CatalogQueryService(catalog, backend="sequential")
        default = service.execute(
            template.format(root=catalog.root, suffix="")
        ).json()
        pinned = service.execute(
            template.format(root=catalog.root, suffix=f" AS OF {latest}")
        ).json()
        assert default == pinned

    @given(spec=chain_spec())
    @settings(max_examples=15, **_SETTINGS)
    def test_replay_equals_feeding_revisions_in_order(
        self, tmp_path_factory, spec
    ):
        base = tmp_path_factory.mktemp("prop") / f"c{next(_counter)}"
        catalog = _build(base / "full", spec)
        service = CatalogQueryService(catalog, backend="sequential")
        knowledge_times = [0] + [
            r["knowledge"] for r in spec["revisions"]
        ]
        for k in knowledge_times:
            fresh_root = base / f"upto{k}"
            fresh = _build(fresh_root, spec, upto=k)
            fresh_service = CatalogQueryService(
                fresh, backend="sequential"
            )
            statement = "SELECT expected_value FROM CATALOG '{root}'"
            got = _answer(
                service,
                statement.format(root=catalog.root) + f" AS OF {k}",
            ).replace(str(catalog.root), "ROOT")
            want = _answer(
                fresh_service, statement.format(root=fresh.root)
            ).replace(str(fresh.root), "ROOT")
            assert got == want, k

    @given(spec=chain_spec())
    @settings(max_examples=15, **_SETTINGS)
    def test_replay_api_matches_as_of_views(self, tmp_path_factory, spec):
        root = tmp_path_factory.mktemp("prop") / f"c{next(_counter)}"
        catalog = _build(root, spec)
        snapshot = catalog.snapshot("s")
        for k, view in catalog.replay("s"):
            direct = snapshot.load_view(as_of=k)
            assert view.columns.t.tolist() == direct.columns.t.tolist()
            assert view.columns.low.tolist() \
                == direct.columns.low.tolist()

    @given(
        spec=chain_spec(),
        as_of_offset=st.integers(min_value=0, max_value=3),
        pruning=st.booleans(),
    )
    @settings(max_examples=10, **_SETTINGS)
    def test_backends_agree_on_shadowed_answers(
        self, tmp_path_factory, spec, as_of_offset, pruning
    ):
        root = tmp_path_factory.mktemp("prop") / f"c{next(_counter)}"
        catalog = _build(root, spec)
        ks = [0] + [r["knowledge"] for r in spec["revisions"]]
        k = ks[as_of_offset % len(ks)]
        statement = (
            f"SELECT exceedance(21.0) FROM CATALOG '{catalog.root}'"
            f" AS OF {k}"
        )
        payloads = {
            backend: CatalogQueryService(
                catalog, backend=backend, pruning=pruning
            ).execute(statement).json()
            for backend in ("sequential", "thread")
        }
        assert len(set(payloads.values())) == 1, payloads


class TestProcessBackendParity:
    """The process backend is spawn-started: one example, not a sweep."""

    def test_process_backend_bit_identical(self, tmp_path):
        spec = {
            "length": 10,
            "base_low": 20.0,
            "revisions": [
                {"start": 2, "span": 4, "knowledge": 1, "shift": 8},
                {"start": 4, "span": 3, "knowledge": 3, "shift": -2},
            ],
        }
        catalog = _build(tmp_path / "cat", spec)
        for suffix in ("", " AS OF 0", " AS OF 1", " AS OF 3"):
            statement = (
                f"SELECT exceedance(21.0) FROM CATALOG "
                f"'{catalog.root}'{suffix}"
            )
            sequential = CatalogQueryService(
                catalog, backend="sequential"
            ).execute(statement).json()
            process = CatalogQueryService(
                catalog, backend="process", max_workers=2
            ).execute(statement).json()
            assert sequential == process, suffix
