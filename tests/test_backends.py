"""Executor-backend suite: parity, selection, faults, mmap reads.

The contract under test: every backend — sequential (the reference),
thread, process — produces **bit-identical** results for the same
statement over the same catalog, because all three run the same
per-envelope compute path.  Fault behaviour is part of the contract too:
a broken series names itself through any backend, a worker process dying
mid-query surfaces as a :class:`QueryError` naming the lost series (and
the pool rebuilds), and a deliberately closed service refuses further
statements with ``"service closed"`` instead of a pool-internal
traceback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, QueryError
from repro.server.protocol import canonical_dumps, serialize_result
from repro.service import (
    CatalogQueryService,
    MatrixCache,
    ProcessBackend,
    SequentialBackend,
    ThreadBackend,
    make_backend,
)
from repro.store import Catalog
from repro.view.omega import OmegaGrid

H = 16
GRID = OmegaGrid(delta=0.5, n=4)
SERIES = 6


def _build_catalog(root, layout: str) -> Catalog:
    catalog = Catalog(root, segment_layout=layout)
    rng = np.random.default_rng(7)
    for index in range(SERIES):
        series_id = f"s-{index}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=H, grid=GRID
        )
        values = 20.0 + 0.05 * index + np.cumsum(
            rng.normal(0.0, 0.05, size=48)
        )
        # Two appends -> two segments, so concatenation paths run too.
        catalog.append(series_id, values[:30])
        catalog.append(series_id, values[30:])
    return catalog


@pytest.fixture(scope="module")
def v2_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("backends") / "cat-v2"
    _build_catalog(root, "v2")
    return root


@pytest.fixture(scope="module")
def npz_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("backends-npz") / "cat-npz"
    _build_catalog(root, "npz")
    return root


def _statements(root) -> list[str]:
    return [
        f"SELECT expected_value FROM CATALOG '{root}'",
        f"SELECT exceedance(20.3) FROM CATALOG '{root}'",
        f"SELECT threshold(0.2) FROM CATALOG '{root}' TOP 3",
        f"SELECT time_above(20.3, 5) FROM CATALOG '{root}' "
        f"WHERE t BETWEEN 18 AND 60",
    ]


def _canonical(result) -> str:
    return canonical_dumps(serialize_result(result))


class TestBackendParity:
    def test_thread_and_sequential_bit_identical(self, v2_root):
        for statement in _statements(v2_root):
            seq = CatalogQueryService(
                v2_root, backend="sequential"
            ).execute(statement)
            thr = CatalogQueryService(
                v2_root, backend="thread", max_workers=4
            ).execute(statement)
            assert _canonical(seq) == _canonical(thr)

    def test_process_bit_identical_and_warm_cache_stable(self, v2_root):
        statements = _statements(v2_root)
        references = [
            _canonical(
                CatalogQueryService(v2_root, backend="sequential").execute(s)
            )
            for s in statements
        ]
        with CatalogQueryService(
            v2_root, backend="process", max_workers=2
        ) as service:
            for statement, reference in zip(statements, references):
                assert _canonical(service.execute(statement)) == reference
            # Second pass hits the per-worker warm caches: same bytes.
            for statement, reference in zip(statements, references):
                assert _canonical(service.execute(statement)) == reference

    def test_mmap_on_off_identical(self, v2_root):
        statement = _statements(v2_root)[1]
        plain = CatalogQueryService(
            v2_root, backend="sequential", mmap=False
        ).execute(statement)
        mapped = CatalogQueryService(
            v2_root, backend="sequential", mmap=True
        ).execute(statement)
        assert _canonical(plain) == _canonical(mapped)

    def test_npz_catalog_identical_to_v2(self, v2_root, npz_root):
        # Same data ingested under both layouts: the stored bytes differ,
        # the query results must not.
        seq_v2 = CatalogQueryService(v2_root, backend="sequential").execute(
            f"SELECT exceedance(20.3) FROM CATALOG '{v2_root}'"
        )
        seq_npz = CatalogQueryService(
            npz_root, backend="sequential", mmap=True  # npz: no-op fallback
        ).execute(f"SELECT exceedance(20.3) FROM CATALOG '{npz_root}'")
        assert seq_v2.scores() == seq_npz.scores()


class TestPrunedPlanParity:
    """The bit-identity gate extended to synopsis-pruned plans.

    A WHERE range that drops whole segments (and a tau that drops whole
    series) must not change a single byte of the serialized result —
    across backends, and against the unpruned reference modulo the
    ``pruning`` stats block.
    """

    PRUNING_STATEMENTS = (
        "SELECT threshold(0.2) FROM CATALOG '{root}' "
        "WHERE t BETWEEN 20 AND 40",
        "SELECT threshold(0.999) FROM CATALOG '{root}'",
        "SELECT expected_value FROM CATALOG '{root}' "
        "WHERE t BETWEEN 35 AND 46",
        "SELECT exceedance(20.3) FROM CATALOG '{root}' "
        "WHERE t BETWEEN 16 AND 30 TOP 3",
        "SELECT time_above(20.3, 4) FROM CATALOG '{root}' "
        "WHERE t BETWEEN 20 AND 44",
    )

    def _pruning_statements(self, root) -> list[str]:
        return [s.format(root=root) for s in self.PRUNING_STATEMENTS]

    @staticmethod
    def _without_stats(result) -> str:
        payload = serialize_result(result)
        payload.pop("pruning", None)
        return canonical_dumps(payload)

    def test_pruned_equals_unpruned_bitwise(self, v2_root):
        for statement in self._pruning_statements(v2_root):
            pruned = CatalogQueryService(
                v2_root, backend="sequential", pruning=True
            ).execute(statement)
            full = CatalogQueryService(
                v2_root, backend="sequential", pruning=False
            ).execute(statement)
            assert self._without_stats(pruned) == self._without_stats(full)

    def test_pruning_actually_prunes(self, v2_root):
        result = CatalogQueryService(
            v2_root, backend="sequential"
        ).execute(
            f"SELECT expected_value FROM CATALOG '{v2_root}' "
            f"WHERE t BETWEEN 35 AND 46"
        )
        assert result.stats is not None
        assert result.stats.segments_pruned > 0
        assert (
            result.stats.segments_scanned + result.stats.segments_pruned
            == result.stats.segments_total
        )

    def test_pruned_identical_across_backends(self, v2_root):
        statements = self._pruning_statements(v2_root)
        references = [
            _canonical(
                CatalogQueryService(v2_root, backend="sequential").execute(s)
            )
            for s in statements
        ]
        thread = CatalogQueryService(v2_root, backend="thread", max_workers=4)
        for statement, reference in zip(statements, references):
            assert _canonical(thread.execute(statement)) == reference
        with CatalogQueryService(
            v2_root, backend="process", max_workers=2
        ) as service:
            for statement, reference in zip(statements, references):
                assert _canonical(service.execute(statement)) == reference

    def test_skipped_series_keep_their_result_slot(self, v2_root):
        # tau=0.999 prunes every segment of every series: all series are
        # skipped, yet each still answers with its exact empty result.
        result = CatalogQueryService(v2_root, backend="sequential").execute(
            f"SELECT threshold(0.999) FROM CATALOG '{v2_root}'"
        )
        assert result.stats is not None
        assert result.stats.series_skipped == SERIES
        assert len(result.results) == SERIES
        assert all(entry.result == [] for entry in result.results)
        assert all(entry.score == 0.0 for entry in result.results)


class TestBackendSelection:
    def test_unknown_backend_rejected(self, v2_root):
        with pytest.raises(InvalidParameterError, match="unknown executor"):
            CatalogQueryService(v2_root, backend="fiber")

    def test_single_worker_thread_degrades_to_sequential(self):
        cache = MatrixCache()
        backend = make_backend("thread", max_workers=1, cache=cache)
        assert isinstance(backend, SequentialBackend)

    def test_named_backends_resolve(self):
        cache = MatrixCache()
        assert isinstance(
            make_backend("thread", max_workers=3, cache=cache), ThreadBackend
        )
        process = make_backend("process", max_workers=2, cache=cache)
        assert isinstance(process, ProcessBackend)
        assert process.mmap  # Zero-copy reads on by default for processes.
        assert not make_backend("thread", max_workers=3, cache=cache).mmap

    def test_instance_passthrough(self, v2_root):
        backend = SequentialBackend(MatrixCache())
        service = CatalogQueryService(v2_root, backend=backend)
        assert service.backend is backend
        assert service.backend_name == "sequential"

    def test_invalid_max_workers(self, v2_root):
        with pytest.raises(InvalidParameterError, match="max_workers"):
            CatalogQueryService(v2_root, max_workers=0)
        with pytest.raises(InvalidParameterError, match="max_workers"):
            ProcessBackend(0)


class TestBackendFaults:
    def test_broken_series_named_through_process_backend(
        self, tmp_path_factory
    ):
        root = tmp_path_factory.mktemp("broken") / "cat"
        _build_catalog(root, "v2")
        # Corrupt one series' segment column so its load fails in a
        # worker process; the error must name the series, not the pool.
        victim = root / "s-2" / "seg-00000001.v2" / "low.npy"
        victim.write_bytes(b"garbage")
        with CatalogQueryService(
            root, backend="process", max_workers=2
        ) as service:
            with pytest.raises(QueryError, match="s-2"):
                service.execute(
                    f"SELECT expected_value FROM CATALOG '{root}'"
                )

    @staticmethod
    def _leaked_shm_blocks() -> list[str]:
        """Leftover transport blocks from this process (Linux-visible)."""
        import os
        from pathlib import Path

        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():
            return []
        return sorted(
            entry.name
            for entry in shm_dir.iterdir()
            if entry.name.startswith(f"repro-{os.getpid()}-")
        )

    def test_worker_crash_names_series_and_pool_recovers(
        self, v2_root, monkeypatch
    ):
        statement = f"SELECT expected_value FROM CATALOG '{v2_root}'"
        monkeypatch.setenv("REPRO_FAULT_WORKER_CRASH", "s-3")
        with CatalogQueryService(
            v2_root, backend="process", max_workers=2
        ) as service:
            with pytest.raises(QueryError, match="s-3") as excinfo:
                service.execute(statement)
            assert "worker process died" in str(excinfo.value)
            # Mid-chunk shared-memory blocks from the dead worker (and
            # any chunks the crash interrupted) must have been reaped.
            assert self._leaked_shm_blocks() == []
            # The dead pool was dropped; with the fault cleared the next
            # statement spawns a fresh pool and succeeds.
            monkeypatch.delenv("REPRO_FAULT_WORKER_CRASH")
            result = service.execute(statement)
            assert len(result.results) == SERIES
        assert self._leaked_shm_blocks() == []

    def test_worker_crash_has_no_tracker_leak_warnings(
        self, tmp_path
    ):
        # The resource tracker reports leaked shared_memory blocks on
        # interpreter exit, so the whole crash/recover cycle runs in a
        # subprocess whose stderr must stay free of tracker complaints.
        import subprocess
        import sys
        import textwrap
        from pathlib import Path

        import repro

        script = tmp_path / "crash_cycle.py"
        script.write_text(textwrap.dedent(
            """
            import os
            import sys

            import numpy as np

            from repro.exceptions import QueryError
            from repro.service import CatalogQueryService
            from repro.store import Catalog
            from repro.view.omega import OmegaGrid


            def main(root: str) -> int:
                catalog = Catalog(root, segment_layout="v2")
                for index in range(4):
                    series_id = f"s-{index}"
                    catalog.create_series(
                        series_id,
                        metric="variable_threshold",
                        H=16,
                        grid=OmegaGrid(delta=0.5, n=4),
                    )
                    catalog.append(series_id, 20.0 + 0.01 * np.arange(48.0))
                statement = (
                    f"SELECT expected_value FROM CATALOG '{root}'"
                )
                with CatalogQueryService(
                    root, backend="process", max_workers=2
                ) as service:
                    try:
                        service.execute(statement)
                    except QueryError as exc:
                        print(f"CRASHED {exc}")
                    else:
                        return 1
                    os.environ.pop("REPRO_FAULT_WORKER_CRASH", None)
                    result = service.execute(statement)
                    print(f"RECOVERED {len(result.results)}")
                return 0


            if __name__ == "__main__":
                sys.exit(main(sys.argv[1]))
            """
        ))
        env = dict(
            __import__("os").environ,
            PYTHONPATH=str(Path(repro.__file__).resolve().parents[1]),
            REPRO_FAULT_WORKER_CRASH="s-1",
        )
        proc = subprocess.run(
            [sys.executable, str(script), str(tmp_path / "cat")],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "CRASHED" in proc.stdout
        assert "RECOVERED 4" in proc.stdout
        assert "leaked shared_memory" not in proc.stderr
        assert "resource_tracker" not in proc.stderr
        assert "Traceback" not in proc.stderr

    def test_closed_process_service_raises_service_closed(self, v2_root):
        service = CatalogQueryService(
            v2_root, backend="process", max_workers=2
        )
        service.close()
        with pytest.raises(QueryError, match="service closed"):
            service.execute(
                f"SELECT expected_value FROM CATALOG '{v2_root}'"
            )

    def test_closed_thread_service_raises_service_closed(self, v2_root):
        statement = f"SELECT expected_value FROM CATALOG '{v2_root}'"
        service = CatalogQueryService(v2_root, max_workers=4)
        service.execute(statement)
        service.close()
        with pytest.raises(QueryError, match="service closed"):
            service.execute(statement)


class TestMixedLayoutFallback:
    def test_series_with_mixed_segment_layouts_loads(self, tmp_path):
        import json

        root = tmp_path / "cat"
        catalog = Catalog(root, segment_layout="npz")
        catalog.create_series(
            "mix", metric="variable_threshold", H=H, grid=GRID
        )
        values = 20.0 + np.cumsum(
            np.random.default_rng(3).normal(0.0, 0.05, size=60)
        )
        catalog.append("mix", values[:40])
        # Flip the series' write layout mid-life: old .npz segments stay,
        # new segments land as .v2 directories.
        meta_path = root / "mix" / "series.json"
        meta = json.loads(meta_path.read_text())
        meta["layout"] = "v2"
        meta_path.write_text(json.dumps(meta))
        reopened = Catalog(root)
        reopened.append("mix", values[40:])
        names = reopened.series("mix").segment_names
        assert any(name.endswith(".npz") for name in names)
        assert any(name.endswith(".v2") for name in names)
        view = Catalog(root).snapshot("mix").load_view(mmap=True)
        expected = reopened.view("mix")
        assert np.array_equal(view.columns.t, expected.columns.t)
        assert np.array_equal(
            view.columns.probability, expected.columns.probability
        )

    def test_drop_series_removes_v2_directories(self, tmp_path):
        root = tmp_path / "cat"
        catalog = Catalog(root, segment_layout="v2")
        catalog.create_series(
            "gone", metric="variable_threshold", H=H, grid=GRID
        )
        catalog.append(
            "gone", 20.0 + 0.01 * np.arange(40, dtype=float)
        )
        segment = root / "gone" / "seg-00000001.v2"
        assert segment.is_dir()
        catalog.drop_series("gone")
        assert not segment.exists()
        assert not (root / "gone").exists()

    def test_invalid_layout_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="segment_layout"):
            Catalog(tmp_path / "cat", segment_layout="parquet")

    def test_unknown_manifest_layout_fails_loudly(self, tmp_path):
        import json

        from repro.exceptions import StoreError

        root = tmp_path / "cat"
        Catalog(root, segment_layout="v2")
        manifest = root / "catalog.json"
        payload = json.loads(manifest.read_text())
        payload["segment_layout"] = "v3"
        manifest.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="segment_layout 'v3'"):
            Catalog(root)

    def test_layout_persists_across_reopen(self, tmp_path):
        root = tmp_path / "cat"
        Catalog(root, segment_layout="v2")
        # A plain reopen — no layout argument — must keep writing what
        # the catalog's creator chose, not silently revert to npz.
        reopened = Catalog(root)
        assert reopened.segment_layout == "v2"
        reopened.create_series(
            "later", metric="variable_threshold", H=H, grid=GRID
        )
        reopened.append(
            "later", 20.0 + 0.01 * np.arange(40, dtype=float)
        )
        names = reopened.series("later").segment_names
        assert names and all(name.endswith(".v2") for name in names)
        # An explicit argument still overrides for that instance.
        assert Catalog(root, segment_layout="npz").segment_layout == "npz"
