"""Tests for the catalog-wide query service (`repro.service`)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.db.engine import Database
from repro.db.queries import expected_value_query, threshold_query
from repro.db.stream_queries import (
    exceedance_probability,
    expected_time_above,
)
from repro.exceptions import (
    InvalidParameterError,
    ParseError,
    QueryError,
    StoreError,
)
from repro.service import (
    CatalogQueryService,
    MatrixCache,
    SelectResult,
    execute_select,
    plan_select,
)
from repro.service.cache import view_nbytes
from repro.service.executor import restrict_time_range
from repro.store import Catalog
from repro.view.omega import OmegaGrid
from repro.view.sql import parse_select_query

H = 20
GRID = OmegaGrid(delta=0.5, n=4)


def _fill_catalog(root, series_count=5, length=90, seed=0) -> Catalog:
    catalog = Catalog(root)
    rng = np.random.default_rng(seed)
    for index in range(series_count):
        series_id = f"sensor-{index:02d}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=H, grid=GRID
        )
        values = 20.0 + index * 0.5 + np.cumsum(
            rng.normal(0.0, 0.15, size=length)
        )
        catalog.append(series_id, values)
    return catalog


@pytest.fixture
def catalog(tmp_path) -> Catalog:
    return _fill_catalog(tmp_path / "catalog")


def _sql(catalog: Catalog, body: str) -> str:
    return f"SELECT {body} FROM CATALOG '{catalog.root}'"


class TestParity:
    """The acceptance criterion: SELECT == the per-series sequential loop."""

    def test_exceedance_matches_per_series_loop(self, catalog):
        result = CatalogQueryService(catalog, max_workers=4).execute(
            _sql(catalog, "exceedance(21.0)")
        )
        assert result.matched == tuple(catalog.list_series())
        for entry in result.results:
            expected = exceedance_probability(
                catalog.view(entry.series_id), 21.0
            )
            assert entry.result == expected
            assert entry.score == max(expected.values())

    def test_threshold_matches_per_series_loop(self, catalog):
        result = CatalogQueryService(catalog, max_workers=4).execute(
            _sql(catalog, "threshold(0.4)")
        )
        for entry in result.results:
            expected = threshold_query(catalog.view(entry.series_id), 0.4)
            assert entry.result == expected
            assert entry.score == float(len(expected))

    def test_expected_value_matches_per_series_loop(self, catalog):
        result = CatalogQueryService(catalog, max_workers=3).execute(
            _sql(catalog, "expected_value")
        )
        for entry in result.results:
            assert entry.result == expected_value_query(
                catalog.view(entry.series_id)
            )

    def test_time_above_matches_per_series_loop(self, catalog):
        result = CatalogQueryService(catalog, max_workers=3).execute(
            _sql(catalog, "time_above(21.0, 5)")
        )
        for entry in result.results:
            assert entry.result == expected_time_above(
                catalog.view(entry.series_id), 21.0, 5
            )

    def test_parallel_equals_sequential(self, catalog):
        statement = _sql(catalog, "exceedance(20.5)") + " TOP 3"
        sequential = CatalogQueryService(catalog, max_workers=1).execute(
            statement
        )
        parallel = CatalogQueryService(catalog, max_workers=8).execute(
            statement
        )
        assert sequential.results == parallel.results
        assert sequential.matched == parallel.matched

    def test_where_clause_matches_sliced_loop(self, catalog):
        result = CatalogQueryService(catalog, max_workers=2).execute(
            _sql(catalog, "exceedance(21.0)") + " WHERE t BETWEEN 30 AND 60"
        )
        for entry in result.results:
            full = exceedance_probability(catalog.view(entry.series_id), 21.0)
            expected = {t: v for t, v in full.items() if 30 <= t <= 60}
            assert entry.result == expected


class TestSelection:
    def test_series_glob_selects_subset(self, catalog):
        catalog.create_series(
            "other", metric="variable_threshold", H=H, grid=GRID
        )
        result = execute_select(
            _sql(catalog, "expected_value") + " SERIES 'sensor-*'"
        )
        assert result.matched == tuple(
            s for s in catalog.list_series() if s.startswith("sensor-")
        )

    def test_top_k_ranks_by_score_descending(self, catalog):
        result = execute_select(_sql(catalog, "exceedance(21.0)") + " TOP 2")
        assert len(result.results) == 2
        scores = [entry.score for entry in result.results]
        assert scores == sorted(scores, reverse=True)
        # The dropped series all score at or below the kept ones.
        full = execute_select(_sql(catalog, "exceedance(21.0)"))
        assert min(scores) >= sorted(
            (e.score for e in full.results), reverse=True
        )[1]

    def test_results_ordered_by_series_id_without_top(self, catalog):
        result = execute_select(_sql(catalog, "expected_value"))
        ids = [entry.series_id for entry in result.results]
        assert ids == sorted(ids)

    def test_no_match_raises(self, catalog):
        with pytest.raises(QueryError, match="no series matches"):
            execute_select(
                _sql(catalog, "expected_value") + " SERIES 'zzz-*'"
            )

    def test_missing_catalog_raises_store_error(self, tmp_path):
        with pytest.raises(StoreError, match="no catalog"):
            execute_select(
                f"SELECT expected_value FROM CATALOG '{tmp_path / 'nope'}'"
            )


class TestPlannerValidation:
    def test_unknown_aggregate(self, catalog):
        with pytest.raises(QueryError, match="unknown aggregate"):
            execute_select(_sql(catalog, "median"))

    def test_wrong_arity(self, catalog):
        with pytest.raises(InvalidParameterError, match="takes"):
            execute_select(_sql(catalog, "exceedance"))
        with pytest.raises(InvalidParameterError, match="takes"):
            execute_select(_sql(catalog, "expected_value(3)"))

    def test_tau_domain(self, catalog):
        with pytest.raises(InvalidParameterError, match="tau"):
            execute_select(_sql(catalog, "threshold(1.5)"))

    def test_window_must_be_positive_integer(self, catalog):
        with pytest.raises(InvalidParameterError, match="window"):
            execute_select(_sql(catalog, "time_above(21.0, 2.5)"))
        with pytest.raises(InvalidParameterError, match="window"):
            execute_select(_sql(catalog, "time_above(21.0, 0)"))

    def test_empty_time_range_rejected_at_parse_time(self, catalog):
        # The parser now refuses inverted WHERE bounds outright ...
        with pytest.raises(ParseError, match="empty time range"):
            execute_select(
                _sql(catalog, "expected_value") + " WHERE t BETWEEN 50 AND 10"
            )

    def test_empty_time_range_rejected_for_built_queries(self, catalog):
        # ... and the planner still guards programmatically built queries
        # that never went through the parser.
        query = parse_select_query(_sql(catalog, "expected_value"))
        inverted = dataclasses.replace(query, time_lo=50.0, time_hi=10.0)
        with pytest.raises(InvalidParameterError, match="empty time range"):
            execute_select(inverted)

    def test_per_series_failure_names_the_series(self, catalog):
        # A window longer than any series' stored times fails inside the
        # aggregate; the error must say which series broke.
        with pytest.raises(QueryError, match="sensor-00"):
            execute_select(_sql(catalog, "time_above(21.0, 5000)"))

    def test_corrupt_segment_failure_names_the_series(self, catalog):
        # Load failures count too: truncate one series' segment and the
        # error must still say which of the five broke.
        segment = next((catalog.root / "sensor-02").glob("seg-*.npz"))
        segment.write_bytes(b"PK\x03\x04 truncated")
        with pytest.raises(QueryError, match="sensor-02"):
            CatalogQueryService(catalog, max_workers=4).execute(
                _sql(catalog, "expected_value")
            )


class TestServiceWiring:
    def test_statement_must_address_bound_catalog(self, catalog, tmp_path):
        other = Catalog(tmp_path / "other")
        other.create_series(
            "x", metric="variable_threshold", H=H, grid=GRID
        )
        service = CatalogQueryService(catalog)
        with pytest.raises(QueryError, match="bound to"):
            service.execute(
                f"SELECT expected_value FROM CATALOG '{other.root}'"
            )

    def test_create_statement_rejected(self, catalog):
        service = CatalogQueryService(catalog)
        with pytest.raises(QueryError, match="SELECT"):
            service.execute(
                "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x"
            )

    def test_max_workers_validated(self, catalog):
        with pytest.raises(InvalidParameterError, match="max_workers"):
            CatalogQueryService(catalog, max_workers=0)

    def test_engine_dispatches_select(self, catalog):
        result = Database().execute(_sql(catalog, "exceedance(21.0)"))
        assert isinstance(result, SelectResult)
        assert len(result.results) == 5

    def test_plan_describes_itself(self, catalog):
        plan = plan_select(
            catalog, parse_select_query(_sql(catalog, "exceedance(21.0)"))
        )
        description = plan.describe()
        assert "exceedance(21)" in description and "5 series" in description


class TestMatrixCache:
    def test_warm_query_skips_reloads(self, catalog):
        service = CatalogQueryService(catalog, max_workers=2)
        statement = _sql(catalog, "expected_value")
        service.execute(statement)
        cold = service.cache.stats
        assert cold.misses == 5 and cold.hits == 0
        service.execute(statement)
        warm = service.cache.stats
        assert warm.misses == 5 and warm.hits == 5

    def test_append_invalidates_generation(self, catalog):
        service = CatalogQueryService(catalog, max_workers=1)
        statement = _sql(catalog, "expected_value")
        before = service.execute(statement)
        catalog.append("sensor-00", 21.0 + 0.01 * np.arange(10))
        after = service.execute(statement)
        stats = service.cache.stats
        # Exactly one series was re-materialised...
        assert stats.misses == 6 and stats.hits == 4
        assert len(service.cache) == 5  # ...and its stale entry dropped.
        ev_before = before.results[0].result
        ev_after = after.results[0].result
        assert len(ev_after) == len(ev_before) + 10
        assert all(ev_after[t] == v for t, v in ev_before.items())

    def test_budget_evicts_lru(self, catalog):
        views = {
            series_id: catalog.view(series_id)
            for series_id in catalog.list_series()
        }
        one_view = view_nbytes(next(iter(views.values())))
        service = CatalogQueryService(
            catalog, max_workers=1, cache_budget_bytes=int(one_view * 2.5)
        )
        service.execute(_sql(catalog, "expected_value"))
        stats = service.cache.stats
        assert stats.entries == 2
        assert stats.evictions == 3
        assert stats.current_bytes <= service.cache.budget_bytes

    def test_oversize_entry_not_cached(self, catalog):
        service = CatalogQueryService(
            catalog, max_workers=1, cache_budget_bytes=128
        )
        result = service.execute(_sql(catalog, "expected_value"))
        assert len(result.results) == 5  # Still answered, just uncached.
        stats = service.cache.stats
        assert stats.entries == 0
        assert stats.oversize_skips == 5

    def test_shared_cache_between_services(self, catalog):
        cache = MatrixCache(64 << 20)
        CatalogQueryService(catalog, max_workers=1, cache=cache).execute(
            _sql(catalog, "expected_value")
        )
        CatalogQueryService(catalog, max_workers=1, cache=cache).execute(
            _sql(catalog, "exceedance(21.0)")
        )
        assert cache.stats.hits == 5

    def test_clear_resets_bytes(self, catalog):
        service = CatalogQueryService(catalog, max_workers=1)
        service.execute(_sql(catalog, "expected_value"))
        service.cache.clear()
        stats = service.cache.stats
        assert stats.entries == 0 and stats.current_bytes == 0

    def test_budget_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            MatrixCache(0)

    def test_drop_and_recreate_never_serves_stale_data(self, catalog):
        # A recreated series restarts segment numbering, so segment names
        # repeat across incarnations; the per-creation nonce in the
        # generation token must keep the old entry unreachable.
        service = CatalogQueryService(catalog, max_workers=1)
        statement = _sql(catalog, "expected_value") + " SERIES 'sensor-00'"
        before = service.execute(statement).results[0]
        catalog.drop_series("sensor-00")
        catalog.create_series(
            "sensor-00", metric="variable_threshold", H=H, grid=GRID
        )
        catalog.append("sensor-00", 40.0 + 0.01 * np.arange(90))
        after = service.execute(statement).results[0]
        assert after.score > before.score + 15  # ~20 vs ~40: fresh data.
        assert after.result == expected_value_query(
            catalog.view("sensor-00")
        )


class TestRestrictTimeRange:
    def test_unbounded_returns_same_object(self, catalog):
        view = catalog.view("sensor-00")
        assert restrict_time_range(view, None, None) is view

    def test_covering_bounds_return_same_object(self, catalog):
        view = catalog.view("sensor-00")
        assert restrict_time_range(view, -1e9, 1e9) is view

    def test_slice_preserves_labels_and_mass(self, catalog):
        view = catalog.view("sensor-00")
        sliced = restrict_time_range(view, 25, 40)
        assert sliced.times == [t for t in view.times if 25 <= t <= 40]
        for t in sliced.times:
            assert sliced.tuples_at(t) == view.tuples_at(t)

    def test_empty_slice_is_empty_view(self, catalog):
        view = catalog.view("sensor-00")
        assert len(restrict_time_range(view, 1e6, 2e6)) == 0


class TestSnapshots:
    def test_snapshot_matches_handle_view(self, catalog):
        snapshot = catalog.snapshot("sensor-01")
        via_snapshot = snapshot.load_view()
        via_handle = catalog.view("sensor-01")
        cols_a, cols_b = via_snapshot.columns, via_handle.columns
        for a, b in zip(cols_a[:5], cols_b[:5]):
            np.testing.assert_array_equal(a, b)
        assert cols_a.labels == cols_b.labels

    def test_open_many_sorted(self, catalog):
        snapshots = catalog.open_many("sensor-*")
        assert [s.series_id for s in snapshots] == catalog.list_series()

    def test_snapshot_unknown_series(self, catalog):
        with pytest.raises(QueryError, match="unknown series"):
            catalog.snapshot("ghost")

    def test_generation_changes_on_append(self, catalog):
        before = catalog.snapshot("sensor-00").generation
        catalog.append("sensor-00", 21.0 + 0.01 * np.arange(5))
        after = catalog.snapshot("sensor-00").generation
        assert before != after

    def test_select_series_glob(self, catalog):
        assert catalog.select_series("sensor-0[01]") == [
            "sensor-00", "sensor-01",
        ]
        assert catalog.select_series("nope*") == []
