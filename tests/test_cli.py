"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_names_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["query", "CREATE ..."])
        assert args.data == "campus"
        assert args.head == 12


class TestCommands:
    def test_experiment_prints_table(self, capsys):
        exit_code = main(["experiment", "fig14b"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "max ratio Ds" in captured.out

    def test_generate_and_query_roundtrip(self, tmp_path, capsys):
        csv_path = str(tmp_path / "data.csv")
        assert main(["generate", "campus", csv_path, "--scale", "0.03"]) == 0
        capsys.readouterr()
        exit_code = main([
            "query",
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=0.5, n=4 "
            "METRIC vt WINDOW 40 FROM raw_values",
            "--data", csv_path,
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "created ProbabilisticView" in captured.out
        assert "lambda=" in captured.out

    def test_query_reports_errors_cleanly(self, capsys):
        exit_code = main([
            "query", "CREATE GARBAGE", "--data", "campus", "--scale", "0.03",
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err

    def test_arch_test_runs(self, capsys):
        exit_code = main([
            "arch-test", "--data", "campus", "--scale", "0.03", "--max-lag", "2",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Phi(m)" in captured.out

    def test_generate_humidity(self, tmp_path, capsys):
        csv_path = str(tmp_path / "humidity.csv")
        assert main(["generate", "humidity", csv_path, "--scale", "0.03"]) == 0
        captured = capsys.readouterr()
        assert "campus-humidity" in captured.out


class TestStoreCommands:
    def test_init_ingest_query_list(self, tmp_path, capsys):
        catalog = str(tmp_path / "catalog")
        assert main([
            "store", "init", catalog, "room",
            "--metric", "vt", "--window", "40", "--delta", "0.5", "--n", "4",
        ]) == 0
        assert "created SeriesHandle('room'" in capsys.readouterr().out

        assert main([
            "store", "ingest", catalog, "room",
            "--data", "campus", "--scale", "0.03", "--batch", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "micro-batches" in out and "tuples stored" in out

        assert main([
            "store", "query", catalog, "room",
            "--kind", "exceedance", "--threshold", "21", "--head", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "exceedance threshold=21.0" in out

        assert main([
            "store", "query", catalog, "room",
            "--kind", "threshold", "--tau", "0.4", "--head", "3",
        ]) == 0
        assert "probability" in capsys.readouterr().out

        assert main(["store", "list", catalog]) == 0
        out = capsys.readouterr().out
        assert "room" in out and "dynamic" in out

    def test_ingest_into_missing_catalog_fails_cleanly(self, tmp_path, capsys):
        exit_code = main([
            "store", "ingest", str(tmp_path / "absent"), "room",
            "--data", "campus", "--scale", "0.03",
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err

    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store"])

    def test_query_missing_series_fails_cleanly(self, tmp_path, capsys):
        catalog = str(tmp_path / "catalog")
        assert main([
            "store", "init", catalog, "room",
            "--metric", "vt", "--window", "40", "--n", "4",
        ]) == 0
        capsys.readouterr()
        exit_code = main(["store", "query", catalog, "ghost"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_ingest_missing_csv_fails_cleanly(self, tmp_path, capsys):
        catalog = str(tmp_path / "catalog")
        assert main([
            "store", "init", catalog, "room",
            "--metric", "vt", "--window", "40", "--n", "4",
        ]) == 0
        capsys.readouterr()
        exit_code = main([
            "store", "ingest", catalog, "room",
            "--data", str(tmp_path / "absent.csv"),
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err


class TestServiceCommands:
    @staticmethod
    def _make_catalog(tmp_path, capsys) -> str:
        catalog = str(tmp_path / "catalog")
        for series in ("room-a", "room-b"):
            assert main([
                "store", "init", catalog, series,
                "--metric", "vt", "--window", "30", "--n", "4",
            ]) == 0
            assert main([
                "store", "ingest", catalog, series,
                "--data", "campus", "--scale", "0.03", "--batch", "60",
            ]) == 0
        capsys.readouterr()
        return catalog

    def test_select_over_whole_catalog(self, tmp_path, capsys):
        catalog = self._make_catalog(tmp_path, capsys)
        exit_code = main([
            "service", "query",
            f"SELECT exceedance(21.0) FROM CATALOG '{catalog}' "
            "SERIES 'room-*' TOP 2",
            "--head", "3",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "2 matched series" in out
        assert "room-a" in out and "room-b" in out
        assert "max_p" in out

    def test_select_threshold_prints_tuple_rows(self, tmp_path, capsys):
        catalog = self._make_catalog(tmp_path, capsys)
        exit_code = main([
            "service", "query",
            f"SELECT threshold(0.4) FROM CATALOG '{catalog}'",
            "--head", "2",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "probability" in out and "label" in out

    def test_missing_catalog_fails_cleanly(self, tmp_path, capsys):
        exit_code = main([
            "service", "query",
            f"SELECT exceedance(21.0) FROM CATALOG '{tmp_path / 'absent'}'",
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_unmatched_series_fails_cleanly(self, tmp_path, capsys):
        catalog = self._make_catalog(tmp_path, capsys)
        exit_code = main([
            "service", "query",
            f"SELECT exceedance(21.0) FROM CATALOG '{catalog}' SERIES 'z*'",
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "no series matches" in captured.err

    def test_bad_statement_fails_cleanly(self, tmp_path, capsys):
        exit_code = main(["service", "query", "SELECT GARBAGE"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err.startswith("error:")

    def test_query_command_redirects_select_cleanly(self, tmp_path, capsys):
        exit_code = main([
            "query", "SELECT exceedance(21.0) FROM CATALOG '/tmp/x'",
            "--data", "campus", "--scale", "0.03",
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "service query" in captured.err
        assert "Traceback" not in captured.err

    def test_service_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["service"])


class TestServerCommands:
    @staticmethod
    def _make_catalog(tmp_path, capsys) -> str:
        catalog = str(tmp_path / "catalog")
        assert main([
            "store", "init", catalog, "room-a",
            "--metric", "vt", "--window", "30", "--n", "4",
        ]) == 0
        assert main([
            "store", "ingest", catalog, "room-a",
            "--data", "campus", "--scale", "0.03", "--batch", "60",
        ]) == 0
        capsys.readouterr()
        return catalog

    def test_server_query_round_trip(self, tmp_path, capsys):
        from repro.server import QueryServer, ServerThread

        catalog = self._make_catalog(tmp_path, capsys)
        with ServerThread(QueryServer(catalog, port=0)) as (host, port):
            exit_code = main([
                "server", "query",
                f"SELECT exceedance(21.0) FROM CATALOG '{catalog}'",
                "--host", host, "--port", str(port), "--head", "3",
            ])
            out = capsys.readouterr().out
            assert exit_code == 0
            assert "1 matched series" in out
            assert "room-a" in out

            exit_code = main([
                "server", "query",
                f"SELECT expected_value FROM CATALOG '{catalog}'",
                "--host", host, "--port", str(port), "--json",
            ])
            out = capsys.readouterr().out
            assert exit_code == 0
            assert out.startswith('{"aggregate":"expected_value"')

    def test_server_query_structured_engine_error(self, tmp_path, capsys):
        from repro.server import QueryServer, ServerThread

        catalog = self._make_catalog(tmp_path, capsys)
        with ServerThread(QueryServer(catalog, port=0)) as (host, port):
            exit_code = main([
                "server", "query",
                f"SELECT exceedance(21.0) FROM CATALOG '{catalog}' "
                "SERIES 'z*'",
                "--host", host, "--port", str(port),
            ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err.startswith("error: query_error")
        assert "Traceback" not in captured.err

    def test_server_query_without_server_fails_cleanly(self, capsys):
        exit_code = main([
            "server", "query", "SELECT expected_value FROM CATALOG 'x'",
            "--port", "1",  # Nothing listens on port 1.
        ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_keyboard_interrupt_exits_cleanly(self, capsys, monkeypatch):
        import repro.service

        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(repro.service, "execute_select", interrupted)
        exit_code = main([
            "service", "query", "SELECT expected_value FROM CATALOG 'x'",
        ])
        captured = capsys.readouterr()
        assert exit_code == 130
        assert "interrupted" in captured.err
        assert "Traceback" not in captured.err

    def test_server_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["server"])

    def test_service_query_multi_statement_batch(self, tmp_path, capsys):
        catalog = self._make_catalog(tmp_path, capsys)
        exceedance = f"SELECT exceedance(21.0) FROM CATALOG '{catalog}'"
        exit_code = main([
            "service", "query",
            exceedance,
            f"SELECT threshold(0.4) FROM CATALOG '{catalog}' TOP 1",
            exceedance,  # Duplicate: planned and executed once.
            "--head", "2",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert out.count("matched series") == 3
        assert "max_p" in out and "hits" in out
