"""Tests for the SQL-like view query language."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.view.sql import parse_view_query

PAPER_QUERY = (
    "CREATE VIEW prob_view AS DENSITY r OVER t "
    "OMEGA delta=2, n=2 FROM raw_values WHERE t >= 1 AND t <= 3"
)


class TestPaperExample:
    def test_fig7_query_parses(self):
        query = parse_view_query(PAPER_QUERY)
        assert query.view_name == "prob_view"
        assert query.value_column == "r"
        assert query.time_column == "t"
        assert query.delta == 2.0
        assert query.n == 2
        assert query.table_name == "raw_values"
        assert (query.time_lo, query.time_hi) == (1.0, 3.0)

    def test_defaults(self):
        query = parse_view_query(PAPER_QUERY)
        assert query.metric_name == "arma_garch"
        assert query.metric_params == {}
        assert query.window is None
        assert not query.uses_cache


class TestClauses:
    def test_metric_with_parameters(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=0.5, n=10 "
            "METRIC cgarch (p=2, kappa=2.5, oc_max=7) FROM raw"
        )
        assert query.metric_name == "cgarch"
        assert query.metric_params == {"p": 2, "kappa": 2.5, "oc_max": 7}

    def test_metric_without_parameters(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "METRIC variable_threshold FROM raw"
        )
        assert query.metric_name == "variable_threshold"

    def test_window_clause(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "WINDOW 120 FROM raw"
        )
        assert query.window == 120

    def test_cache_distance(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "CACHE (distance=0.01) FROM raw"
        )
        assert query.cache_distance == 0.01
        assert query.uses_cache

    def test_cache_memory(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "CACHE (memory=64) FROM raw"
        )
        assert query.cache_memory == 64

    def test_cache_both(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "CACHE (distance=0.05, memory=32) FROM raw"
        )
        assert query.cache_distance == 0.05
        assert query.cache_memory == 32

    def test_omega_order_free(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA n=4, delta=0.25 FROM raw"
        )
        assert (query.delta, query.n) == (0.25, 4)

    def test_between_where(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "FROM raw WHERE t BETWEEN 5 AND 10"
        )
        assert (query.time_lo, query.time_hi) == (5.0, 10.0)

    def test_reversed_where_order(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "FROM raw WHERE t <= 10 AND t >= 5"
        )
        assert (query.time_lo, query.time_hi) == (5.0, 10.0)

    def test_single_bound_where(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "FROM raw WHERE t >= 100"
        )
        assert query.time_lo == 100.0
        assert query.time_hi is None

    def test_keywords_case_insensitive(self):
        query = parse_view_query(
            "create view V as density R over T omega delta=1, n=2 from RAW"
        )
        assert query.view_name == "V"
        assert query.table_name == "RAW"

    def test_boolean_metric_parameter(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "METRIC arma_garch (warm_start=false) FROM raw"
        )
        assert query.metric_params == {"warm_start": False}

    def test_persist_into_clause(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM raw "
            "WHERE t >= 1 AND t <= 9 PERSIST INTO '/data/catalogs/main'"
        )
        assert query.persist_path == "/data/catalogs/main"
        assert (query.time_lo, query.time_hi) == (1.0, 9.0)

    def test_persist_defaults_to_none(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM raw"
        )
        assert query.persist_path is None


class TestErrors:
    @pytest.mark.parametrize(
        "bad_query, pattern",
        [
            ("", "empty"),
            ("SELECT r FROM x", "CREATE"),
            ("CREATE TABLE v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x",
             "VIEW"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1 FROM x",
             "delta and n"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2.5 FROM x",
             "integer"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x "
             "WHERE other >= 1", "time column"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x "
             "WHERE t >= 1 AND t >= 2", "duplicate"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
             "CACHE (budget=1) FROM x", "CACHE"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x "
             "trailing garbage", "trailing"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA size=1, n=2 FROM x",
             "OMEGA"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x "
             "PERSIST INTO catalog", "quoted string"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x "
             "PERSIST '/tmp/c'", "INTO"),
        ],
    )
    def test_malformed_queries_raise_parse_error(self, bad_query, pattern):
        with pytest.raises(ParseError, match=pattern):
            parse_view_query(bad_query)

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as info:
            parse_view_query("CREATE VIEW v @ DENSITY")
        assert info.value.position >= 0

    def test_missing_from(self):
        with pytest.raises(ParseError, match="FROM"):
            parse_view_query(
                "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2"
            )
