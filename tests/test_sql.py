"""Tests for the SQL-like view query language."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.view.sql import (
    SelectItem,
    SelectQuery,
    SimulateQuery,
    ViewQuery,
    parse_select_query,
    parse_statement,
    parse_view_query,
)

PAPER_QUERY = (
    "CREATE VIEW prob_view AS DENSITY r OVER t "
    "OMEGA delta=2, n=2 FROM raw_values WHERE t >= 1 AND t <= 3"
)


class TestPaperExample:
    def test_fig7_query_parses(self):
        query = parse_view_query(PAPER_QUERY)
        assert query.view_name == "prob_view"
        assert query.value_column == "r"
        assert query.time_column == "t"
        assert query.delta == 2.0
        assert query.n == 2
        assert query.table_name == "raw_values"
        assert (query.time_lo, query.time_hi) == (1.0, 3.0)

    def test_defaults(self):
        query = parse_view_query(PAPER_QUERY)
        assert query.metric_name == "arma_garch"
        assert query.metric_params == {}
        assert query.window is None
        assert not query.uses_cache


class TestClauses:
    def test_metric_with_parameters(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=0.5, n=10 "
            "METRIC cgarch (p=2, kappa=2.5, oc_max=7) FROM raw"
        )
        assert query.metric_name == "cgarch"
        assert query.metric_params == {"p": 2, "kappa": 2.5, "oc_max": 7}

    def test_metric_without_parameters(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "METRIC variable_threshold FROM raw"
        )
        assert query.metric_name == "variable_threshold"

    def test_window_clause(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "WINDOW 120 FROM raw"
        )
        assert query.window == 120

    def test_cache_distance(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "CACHE (distance=0.01) FROM raw"
        )
        assert query.cache_distance == 0.01
        assert query.uses_cache

    def test_cache_memory(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "CACHE (memory=64) FROM raw"
        )
        assert query.cache_memory == 64

    def test_cache_both(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "CACHE (distance=0.05, memory=32) FROM raw"
        )
        assert query.cache_distance == 0.05
        assert query.cache_memory == 32

    def test_omega_order_free(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA n=4, delta=0.25 FROM raw"
        )
        assert (query.delta, query.n) == (0.25, 4)

    def test_between_where(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "FROM raw WHERE t BETWEEN 5 AND 10"
        )
        assert (query.time_lo, query.time_hi) == (5.0, 10.0)

    def test_reversed_where_order(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "FROM raw WHERE t <= 10 AND t >= 5"
        )
        assert (query.time_lo, query.time_hi) == (5.0, 10.0)

    def test_single_bound_where(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "FROM raw WHERE t >= 100"
        )
        assert query.time_lo == 100.0
        assert query.time_hi is None

    def test_keywords_case_insensitive(self):
        query = parse_view_query(
            "create view V as density R over T omega delta=1, n=2 from RAW"
        )
        assert query.view_name == "V"
        assert query.table_name == "RAW"

    def test_boolean_metric_parameter(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "METRIC arma_garch (warm_start=false) FROM raw"
        )
        assert query.metric_params == {"warm_start": False}

    def test_persist_into_clause(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM raw "
            "WHERE t >= 1 AND t <= 9 PERSIST INTO '/data/catalogs/main'"
        )
        assert query.persist_path == "/data/catalogs/main"
        assert (query.time_lo, query.time_hi) == (1.0, 9.0)

    def test_persist_defaults_to_none(self):
        query = parse_view_query(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM raw"
        )
        assert query.persist_path is None


class TestErrors:
    @pytest.mark.parametrize(
        "bad_query, pattern",
        [
            ("", "empty"),
            ("SELECT r FROM x", "CREATE"),
            ("CREATE TABLE v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x",
             "VIEW"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1 FROM x",
             "delta and n"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2.5 FROM x",
             "integer"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x "
             "WHERE other >= 1", "time column"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x "
             "WHERE t >= 1 AND t >= 2", "duplicate"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
             "CACHE (budget=1) FROM x", "CACHE"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x "
             "trailing garbage", "trailing"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA size=1, n=2 FROM x",
             "OMEGA"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x "
             "PERSIST INTO catalog", "quoted string"),
            ("CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x "
             "PERSIST '/tmp/c'", "INTO"),
        ],
    )
    def test_malformed_queries_raise_parse_error(self, bad_query, pattern):
        with pytest.raises(ParseError, match=pattern):
            parse_view_query(bad_query)

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as info:
            parse_view_query("CREATE VIEW v @ DENSITY")
        assert info.value.position >= 0

    def test_missing_from(self):
        with pytest.raises(ParseError, match="FROM"):
            parse_view_query(
                "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2"
            )


class TestSelectStatement:
    def test_full_statement(self):
        query = parse_select_query(
            "SELECT time_above(21.0, 5) FROM CATALOG '/data/cat' "
            "SERIES 'sensor-*' WHERE t BETWEEN 100 AND 500 TOP 5"
        )
        assert query.aggregate == "time_above"
        assert query.arguments == (21.0, 5.0)
        assert query.catalog_path == "/data/cat"
        assert query.series_pattern == "sensor-*"
        assert (query.time_lo, query.time_hi) == (100.0, 500.0)
        assert query.top_k == 5

    def test_minimal_statement_defaults(self):
        query = parse_select_query(
            "SELECT expected_value FROM CATALOG '/data/cat'"
        )
        assert query.aggregate == "expected_value"
        assert query.arguments == ()
        assert query.series_pattern == "*"
        assert query.time_lo is None and query.time_hi is None
        assert query.top_k is None

    def test_comparison_where(self):
        query = parse_select_query(
            "SELECT exceedance(2.5) FROM CATALOG '/c' "
            "WHERE t >= 10 AND t <= 90"
        )
        assert (query.time_lo, query.time_hi) == (10.0, 90.0)

    def test_strict_comparison_rejected(self):
        # Bounds apply inclusively downstream; a silently accepted '<'
        # would include the boundary row.
        with pytest.raises(ParseError, match="inclusive"):
            parse_select_query(
                "SELECT exceedance(2.5) FROM CATALOG '/c' WHERE t < 90"
            )
        with pytest.raises(ParseError, match="inclusive"):
            parse_view_query(
                "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
                "FROM x WHERE t > 1"
            )

    def test_keywords_case_insensitive(self):
        query = parse_select_query(
            "select Threshold(0.5) from catalog '/c' series 'a?' top 1"
        )
        assert query.aggregate == "threshold"
        assert query.series_pattern == "a?"
        assert query.top_k == 1

    def test_parse_statement_dispatches_both_kinds(self):
        select = parse_statement("SELECT expected_value FROM CATALOG '/c'")
        assert isinstance(select, SelectQuery)
        create = parse_statement(
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x"
        )
        assert isinstance(create, ViewQuery)

    @pytest.mark.parametrize(
        "bad_query, pattern",
        [
            ("SELECT FROM CATALOG '/c'", "aggregate name"),
            ("SELECT exceedance(21.0) FROM '/c'", "CATALOG"),
            ("SELECT exceedance(21.0) FROM CATALOG", "quoted string"),
            ("SELECT exceedance(21.0) FROM CATALOG '/c' SERIES sensor",
             "quoted string"),
            ("SELECT exceedance(21.0,) FROM CATALOG '/c'", "argument"),
            ("SELECT exceedance(tau=1) FROM CATALOG '/c'", "argument"),
            ("SELECT exceedance(1) CATALOG '/c'", "FROM"),
            ("SELECT exceedance(1) FROM CATALOG '/c' TOP 0", ">= 1"),
            ("SELECT exceedance(1) FROM CATALOG '/c' TOP 2 extra",
             "trailing"),
            ("SELECT exceedance(1) FROM CATALOG '/c' WHERE x >= 1",
             "time column"),
        ],
    )
    def test_malformed_select_raises_parse_error(self, bad_query, pattern):
        with pytest.raises(ParseError, match=pattern):
            parse_select_query(bad_query)

    def test_select_keywords_stay_valid_create_identifiers(self):
        # select/catalog/series/top are positional keywords of the SELECT
        # grammar only — CREATE VIEW statements may keep using them as
        # table or column names.
        query = parse_view_query(
            "CREATE VIEW top AS DENSITY catalog OVER t "
            "OMEGA delta=1, n=2 FROM series"
        )
        assert query.view_name == "top"
        assert query.value_column == "catalog"
        assert query.table_name == "series"

    def test_select_entry_point_rejects_create(self):
        with pytest.raises(ParseError, match="SELECT"):
            parse_select_query(
                "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM x"
            )


class TestMultiAggregateSelect:
    def test_select_list_parses_in_order(self):
        query = parse_select_query(
            "SELECT threshold(0.4), expected_value, exceedance(21) "
            "FROM CATALOG '/c'"
        )
        assert [item.name for item in query.items] == [
            "threshold", "expected_value", "exceedance",
        ]
        assert query.items[0].arguments == (0.4,)
        assert query.items[1].arguments == ()

    def test_single_item_compat_accessors(self):
        query = parse_select_query(
            "SELECT exceedance(21) FROM CATALOG '/c'"
        )
        assert query.aggregate == "exceedance"
        assert query.arguments == (21.0,)

    def test_probability_of_item(self):
        query = parse_select_query(
            "SELECT PROBABILITY OF v BETWEEN 20 AND 22 FROM CATALOG '/c'"
        )
        item = query.items[0]
        assert item == SelectItem(
            name="probability_of", arguments=(20.0, 22.0), column="v"
        )

    def test_probability_of_inverted_range_rejected(self):
        with pytest.raises(ParseError, match="inverted"):
            parse_select_query(
                "SELECT PROBABILITY OF v BETWEEN 22 AND 20 "
                "FROM CATALOG '/c'"
            )

    def test_approx_rejects_select_lists(self):
        with pytest.raises(ParseError, match="APPROX"):
            parse_select_query(
                "SELECT APPROX exceedance(21), expected_value "
                "FROM CATALOG '/c'"
            )

    def test_inverted_where_bounds_rejected(self):
        with pytest.raises(ParseError, match="empty time range"):
            parse_select_query(
                "SELECT expected_value FROM CATALOG '/c' "
                "WHERE t BETWEEN 90 AND 10"
            )
        with pytest.raises(ParseError, match="empty time range"):
            parse_select_query(
                "SELECT expected_value FROM CATALOG '/c' "
                "WHERE t >= 90 AND t <= 10"
            )


class TestSimulateStatement:
    def test_full_statement(self):
        query = parse_statement(
            "SIMULATE 16 SEED 7 FROM CATALOG '/c' SERIES 'room*' "
            "WHERE t BETWEEN 10 AND 90"
        )
        assert query == SimulateQuery(
            n_worlds=16,
            catalog_path="/c",
            seed=7,
            series_pattern="room*",
            time_lo=10.0,
            time_hi=90.0,
        )

    def test_seed_optional(self):
        query = parse_statement("SIMULATE 4 FROM CATALOG '/c'")
        assert query.n_worlds == 4
        assert query.seed is None

    @pytest.mark.parametrize(
        "bad, pattern",
        [
            ("SIMULATE 0 FROM CATALOG '/c'", ">= 1"),
            ("SIMULATE FROM CATALOG '/c'", "number"),
            ("SIMULATE 2 SEED -1 FROM CATALOG '/c'", ">= 0"),
            ("SIMULATE 2 FROM '/c'", "CATALOG"),
            ("SIMULATE 2 FROM CATALOG '/c' junk", "trailing"),
        ],
    )
    def test_malformed_simulate_raises(self, bad, pattern):
        with pytest.raises(ParseError, match=pattern):
            parse_statement(bad)


class TestStatementRoundTrips:
    """parse → render → parse is the identity on query objects."""

    @pytest.mark.parametrize(
        "statement",
        [
            "SELECT exceedance(21) FROM CATALOG '/c'",
            "SELECT APPROX threshold(0.4) FROM CATALOG '/c' TOP 3",
            "SELECT threshold(0.4), expected_value, time_above(21, 5) "
            "FROM CATALOG '/c' SERIES 'room*' "
            "WHERE t BETWEEN 10 AND 90 TOP 2",
            "SELECT PROBABILITY OF v BETWEEN 20 AND 22, expected_value "
            "FROM CATALOG '/c'",
            "SIMULATE 8 FROM CATALOG '/c'",
            "SIMULATE 16 SEED 42 FROM CATALOG '/c' SERIES 's*' "
            "WHERE t >= 10",
            "SELECT expected_value FROM CATALOG '/c' WHERE t <= 90",
        ],
    )
    def test_round_trip(self, statement):
        from repro.service.executor import _statement_text

        parsed = parse_statement(statement)
        rendered = _statement_text(parsed)
        assert parse_statement(rendered) == parsed
