"""Catalog lifecycle: CRUD, incremental appends, crash-and-reload, SQL persist."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.synthetic import campus_temperature
from repro.db.engine import Database
from repro.db.table import Table
from repro.exceptions import (
    InvalidParameterError,
    QueryError,
    SchemaVersionError,
    StoreError,
)
from repro.pipeline import OnlinePipeline, create_probabilistic_view
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.store import Catalog
from repro.store.binary import SCHEMA_VERSION
from repro.view.omega import OmegaGrid

H = 30
GRID = OmegaGrid(delta=0.5, n=4)


@pytest.fixture()
def values() -> np.ndarray:
    return campus_temperature(200, rng=5).values


def _new_series(catalog: Catalog, series_id: str = "room"):
    return catalog.create_series(
        series_id, metric="variable_threshold", H=H, grid=GRID
    )


class TestCrud:
    def test_create_list_contains_drop(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        assert catalog.list_series() == []
        _new_series(catalog, "a")
        _new_series(catalog, "b")
        assert catalog.list_series() == ["a", "b"]
        assert "a" in catalog and "missing" not in catalog
        catalog.drop_series("a")
        assert catalog.list_series() == ["b"]
        assert not (tmp_path / "cat" / "a").exists()

    def test_duplicate_and_invalid_ids_rejected(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        _new_series(catalog)
        with pytest.raises(StoreError):
            _new_series(catalog)
        with pytest.raises(InvalidParameterError):
            _new_series(catalog, "no/slashes")
        with pytest.raises(InvalidParameterError):
            _new_series(catalog, "")

    def test_unknown_series_and_metric(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        with pytest.raises(QueryError):
            catalog.series("missing")
        with pytest.raises(InvalidParameterError):
            catalog.create_series("x", metric="nope", H=H, grid=GRID)
        assert "x" not in catalog  # Failed creation leaves no trace.

    def test_unrealisable_spec_never_lands_on_disk(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        with pytest.raises(InvalidParameterError):
            # H below the metric's minimum window.
            catalog.create_series(
                "small", metric="arma_garch", H=2, grid=GRID)
        with pytest.raises(InvalidParameterError):
            # Unusable cache bounds.
            catalog.create_series(
                "badcache", metric="variable_threshold", H=H, grid=GRID,
                cache_min_sigma=-1.0, cache_max_sigma=1.0,
                cache_distance=0.05)
        assert catalog.list_series() == []
        assert not (tmp_path / "cat" / "small").exists()
        # The catalog stays fully usable afterwards.
        _new_series(catalog)
        assert catalog.list_series() == ["room"]

    def test_reserved_series_id_rejected(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        with pytest.raises(InvalidParameterError, match="reserved"):
            _new_series(catalog, "catalog.json")
        # Must not collide with the manifest's atomic-write temp path.
        _new_series(catalog, "catalog.tmp")
        _new_series(catalog, "other")
        assert catalog.list_series() == ["catalog.tmp", "other"]

    def test_drop_survives_unrealisable_binding(self, tmp_path):
        """A series whose metric disappears can still be dropped."""
        from repro.metrics.registry import _REGISTRY, register_metric

        register_metric("ephemeral", VariableThresholdingMetric)
        try:
            catalog = Catalog(tmp_path / "cat")
            catalog.create_series("s", metric="ephemeral", H=H, grid=GRID)
        finally:
            _REGISTRY.pop("ephemeral", None)
        reopened = Catalog(tmp_path / "cat")
        # Read paths never realise the binding, so they still work...
        assert reopened.series("s").describe()["metric"] == "ephemeral"
        with pytest.raises(InvalidParameterError):
            reopened.append("s", [1.0, 2.0])  # ...ingestion fails...
        reopened.drop_series("s")  # ...and the data can still be removed.
        assert reopened.list_series() == []

    def test_open_missing_catalog_without_create(self, tmp_path):
        with pytest.raises(StoreError):
            Catalog(tmp_path / "absent", create=False)

    def test_two_instances_do_not_delist_each_other(self, tmp_path):
        """Mutations re-read the manifest, so a second instance on the
        same root (e.g. the one PERSIST INTO opens) is not clobbered."""
        root = tmp_path / "cat"
        first = Catalog(root)
        second = Catalog(root)
        _new_series(second, "from_second")
        _new_series(first, "from_first")
        assert "from_second" in Catalog(root).list_series()
        assert "from_first" in Catalog(root).list_series()
        # Creating a series another instance already registered fails
        # instead of silently overwriting its binding.
        with pytest.raises(StoreError):
            _new_series(first, "from_second")
        # And lazily fetching a series another instance created works.
        assert first.series("from_second").is_dynamic

    def test_stale_handle_rejected_after_drop_and_replace(self, tmp_path, values):
        catalog = Catalog(tmp_path / "cat")
        handle = _new_series(catalog)
        catalog.append("room", values[: H + 10])
        view = catalog.view("room")
        catalog.save_view("room", view)  # Replace dynamic with static.
        with pytest.raises(StoreError):
            handle.append(values[:5])
        with pytest.raises(StoreError):
            handle.view()
        fresh = catalog.series("room")
        assert not fresh.is_dynamic
        dropped = catalog.series("room")
        catalog.drop_series("room")
        with pytest.raises(StoreError):
            dropped.view()


class TestAppend:
    def test_incremental_view_matches_offline_build(self, tmp_path, values):
        """Micro-batched ingestion reproduces the one-shot offline view."""
        catalog = Catalog(tmp_path / "cat")
        _new_series(catalog)
        cursor = 0
        for batch in (17, 1, 50, 3, 80, 49):
            catalog.append("room", values[cursor : cursor + batch])
            cursor += batch
        assert cursor == len(values)
        stored = catalog.view("room")

        series = campus_temperature(200, rng=5)
        offline = create_probabilistic_view(
            series, VariableThresholdingMetric(), H=H, grid=GRID
        )
        assert len(stored) == len(offline)
        a, b = stored.columns, offline.columns
        assert np.array_equal(a.t, b.t)
        np.testing.assert_allclose(a.low, b.low, rtol=0, atol=1e-12)
        np.testing.assert_allclose(a.high, b.high, rtol=0, atol=1e-12)
        np.testing.assert_allclose(a.probability, b.probability,
                                   rtol=0, atol=1e-12)

    def test_append_result_counts_warmup(self, tmp_path, values):
        catalog = Catalog(tmp_path / "cat")
        _new_series(catalog)
        first = catalog.append("room", values[: H - 5])
        assert (first.fed, first.emitted) == (H - 5, 0)
        second = catalog.append("room", values[H - 5 : H + 5])
        assert (second.fed, second.emitted) == (10, 5)
        assert second.times == list(range(H, H + 5))

    def test_sigma_cache_is_reused_across_appends(self, tmp_path, values):
        catalog = Catalog(tmp_path / "cat")
        catalog.create_series(
            "room", metric="variable_threshold", H=H, grid=GRID,
            cache_min_sigma=1e-3, cache_max_sigma=50.0, cache_distance=0.05,
        )
        handle = catalog.series("room")
        cache = handle.sigma_cache
        assert cache is not None
        catalog.append("room", values[:100])
        lookups = cache.stats.lookups
        assert lookups == 100 - H
        catalog.append("room", values[100:150])
        assert handle.sigma_cache is cache  # Same instance, no rebuild.
        assert cache.stats.lookups == lookups + 50

    def test_cache_config_validated(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        with pytest.raises(InvalidParameterError):
            catalog.create_series(
                "a", metric="variable_threshold", H=H, grid=GRID,
                cache_min_sigma=0.1,  # Missing max.
            )
        with pytest.raises(InvalidParameterError):
            catalog.create_series(
                "b", metric="variable_threshold", H=H, grid=GRID,
                cache_min_sigma=0.1, cache_max_sigma=10.0,  # No constraint.
            )

    def test_bad_append_shapes_rejected(self, tmp_path, values):
        catalog = Catalog(tmp_path / "cat")
        _new_series(catalog)
        with pytest.raises(InvalidParameterError):
            catalog.append("room", values.reshape(2, -1))


class TestReload:
    def test_appends_resume_after_reopen(self, tmp_path, values):
        root = tmp_path / "cat"
        catalog = Catalog(root)
        _new_series(catalog)
        catalog.append("room", values[:120])
        del catalog

        reopened = Catalog(root)
        handle = reopened.series("room")
        assert handle.next_t == 120
        result = reopened.append("room", values[120:])
        assert result.emitted == 80  # No re-warm-up: window was restored.

        stored = reopened.view("room")
        continuous = OnlinePipeline(VariableThresholdingMetric(), H, GRID)
        for value in values:
            continuous.feed(value)
        reference = continuous.to_view("reference")
        assert len(stored) == len(reference)
        np.testing.assert_allclose(
            stored.columns.probability, reference.columns.probability,
            rtol=0, atol=1e-12,
        )

    def test_reload_mid_warmup(self, tmp_path, values):
        root = tmp_path / "cat"
        catalog = Catalog(root)
        _new_series(catalog)
        catalog.append("room", values[:10])  # Far below H.
        reopened = Catalog(root)
        result = reopened.append("room", values[10 : H + 1])
        assert result.emitted == 1
        assert result.times == [H]

    def test_schema_version_mismatch_on_reopen(self, tmp_path):
        root = tmp_path / "cat"
        Catalog(root)
        manifest = json.loads((root / "catalog.json").read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 7
        (root / "catalog.json").write_text(json.dumps(manifest))
        with pytest.raises(SchemaVersionError):
            Catalog(root)

    def test_orphan_segment_ignored(self, tmp_path, values):
        """A crash after the segment write but before the meta flush."""
        root = tmp_path / "cat"
        catalog = Catalog(root)
        _new_series(catalog)
        catalog.append("room", values[: H + 20])
        tuples_before = catalog.series("room").tuple_count
        # Simulate the torn write: a segment lands without a meta update.
        (root / "room" / "seg-99999999.npz").write_bytes(b"torn")
        reopened = Catalog(root)
        assert reopened.series("room").tuple_count == tuples_before
        assert len(reopened.view("room")) == tuples_before


class TestStaticViews:
    def test_save_view_round_trip_and_replace(self, tmp_path, values):
        catalog = Catalog(tmp_path / "cat")
        series = campus_temperature(200, rng=5)
        view = create_probabilistic_view(
            series, VariableThresholdingMetric(), H=H, grid=GRID,
            view_name="offline",
        )
        catalog.save_view("offline", view)
        loaded = Catalog(tmp_path / "cat").view("offline")
        assert np.array_equal(loaded.columns.probability,
                              view.columns.probability)
        # Same name again replaces, like Database view registration.
        catalog.save_view("offline", view)
        assert catalog.list_series() == ["offline"]
        handle = catalog.series("offline")
        assert len(handle.segment_names) == 1  # Old segment cleaned up.
        assert handle.tuple_count == len(view)
        assert len(catalog.view("offline")) == len(view)

    def test_replace_is_crash_safe(self, tmp_path):
        """New data lands before the cutover: a torn replace keeps the old
        view."""
        catalog = Catalog(tmp_path / "cat")
        view = create_probabilistic_view(
            campus_temperature(200, rng=5), VariableThresholdingMetric(),
            H=H, grid=GRID,
        )
        catalog.save_view("pv", view)
        # Simulate a crash after the replacement segment was written but
        # before series.json was swapped: the orphan is ignored.
        (tmp_path / "cat" / "pv" / "seg-00000002.npz").write_bytes(b"torn")
        reopened = Catalog(tmp_path / "cat")
        assert reopened.series("pv").segment_names == ["seg-00000001.npz"]
        assert len(reopened.view("pv")) == len(view)
        # A retried replace overwrites the orphan slot and completes.
        reopened.save_view("pv", view)
        assert reopened.series("pv").segment_names == ["seg-00000002.npz"]
        assert len(reopened.view("pv")) == len(view)

    def test_static_series_rejects_appends(self, tmp_path, values):
        catalog = Catalog(tmp_path / "cat")
        view = create_probabilistic_view(
            campus_temperature(200, rng=5), VariableThresholdingMetric(),
            H=H, grid=GRID,
        )
        catalog.save_view("frozen", view)
        with pytest.raises(QueryError):
            catalog.append("frozen", values[:10])


class TestSqlPersist:
    def _database(self) -> Database:
        series = campus_temperature(150, rng=3)
        table = Table("raw_values", ["t", "r"])
        table.insert_many(
            zip(series.timestamps.tolist(), series.values.tolist())
        )
        db = Database()
        db.register_table(table)
        return db

    def test_create_view_persists_into_catalog(self, tmp_path):
        db = self._database()
        root = tmp_path / "cat"
        view = db.execute(
            "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=4 "
            f"METRIC vt WINDOW {H} FROM raw_values "
            f"PERSIST INTO '{root}'"
        )
        stored = Catalog(root, create=False).view("pv")
        assert np.array_equal(stored.columns.probability,
                              view.columns.probability)
        assert np.array_equal(stored.columns.t, view.columns.t)

    def test_persist_clause_optional(self, tmp_path):
        db = self._database()
        view = db.execute(
            "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=4 "
            f"METRIC vt WINDOW {H} FROM raw_values"
        )
        assert len(view) > 0
