"""Property-based tests on the statistical substrates.

These encode the *invariants* of the models rather than point examples:
filters preserve array shapes and positivity, likelihood improves under
fitting, simulators honour their parameters, and the metric layer never
emits an invalid density regardless of window content.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.arma_garch import ARMAGARCHMetric
from repro.metrics.ewma import EWMAMetric
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.timeseries.arma import ARMAModel
from repro.timeseries.garch import GARCHModel, GARCHParams
from repro.timeseries.kalman import KalmanFilter, KalmanParams

_WINDOWS = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=20, max_value=80),
    elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                       allow_infinity=False),
)

_GARCH_PARAMS = st.builds(
    lambda omega, alpha, beta_fraction: GARCHParams(
        omega=omega,
        alpha=np.array([alpha]),
        # beta chosen as a fraction of the remaining stationarity budget.
        beta=np.array([(0.98 - alpha) * beta_fraction]),
    ),
    omega=st.floats(min_value=1e-4, max_value=2.0),
    alpha=st.floats(min_value=0.0, max_value=0.9),
    beta_fraction=st.floats(min_value=0.0, max_value=0.99),
)


@settings(max_examples=50, deadline=None)
@given(window=_WINDOWS, params=_GARCH_PARAMS)
def test_garch_filter_positive_and_aligned(window, params):
    """The variance filter output is positive and input-aligned, always."""
    variance = GARCHModel().filter_variance(window, params)
    assert variance.shape == window.shape
    assert np.all(variance > 0)
    assert np.all(np.isfinite(variance))


@settings(max_examples=30, deadline=None)
@given(params=_GARCH_PARAMS)
def test_garch_simulation_variance_tracks_unconditional(params):
    """Long-run simulated second moment matches omega / (1 - persistence)."""
    assume(params.persistence < 0.9)  # Keep the required sample size sane.
    shocks = GARCHModel.simulate(params, 6000, rng=0)
    empirical = float(np.mean(np.square(shocks)))
    assert empirical == pytest.approx(
        params.unconditional_variance, rel=0.5
    )


@settings(max_examples=40, deadline=None)
@given(window=_WINDOWS)
def test_garch_fit_is_stationary_on_any_window(window):
    """Whatever the window, the fitted model satisfies the paper's
    constraints (omega > 0, coefficients >= 0, persistence < 1)."""
    model = GARCHModel().fit(window)
    model.params_.validate()
    assert model.forecast_variance() > 0


@settings(max_examples=40, deadline=None)
@given(window=_WINDOWS)
def test_arma_fit_and_forecast_finite_on_any_window(window):
    model = ARMAModel(1, 0).fit(window)
    assert np.isfinite(model.predict_next())
    assert model.residuals_.shape == window.shape


@settings(max_examples=30, deadline=None)
@given(
    window=_WINDOWS,
    state_variance=st.floats(min_value=1e-6, max_value=10.0),
    obs_variance=st.floats(min_value=1e-6, max_value=10.0),
)
def test_kalman_filter_variance_reduction_property(
    window, state_variance, obs_variance
):
    """Filtering never increases state uncertainty beyond the prediction."""
    params = KalmanParams(
        state_variance=state_variance, obs_variance=obs_variance,
        initial_mean=float(window[0]),
    )
    result = KalmanFilter().filter(window, params)
    assert np.all(
        result.filtered_variance <= result.predicted_variance + 1e-12
    )
    assert np.isfinite(result.loglik)


@settings(max_examples=40, deadline=None)
@given(window=_WINDOWS)
def test_metrics_emit_valid_densities_on_any_window(window):
    """Every metric yields a positive-volatility density with ordered
    bounds containing the mean, for arbitrary (finite) window content."""
    for metric in (
        VariableThresholdingMetric(),
        EWMAMetric(),
        ARMAGARCHMetric(warm_start=False),
    ):
        forecast = metric.infer(window, t=len(window))
        assert np.isfinite(forecast.mean)
        assert forecast.volatility > 0
        assert forecast.lower <= forecast.mean <= forecast.upper
        # CDF sanity at the bounds.
        cdf_low = forecast.distribution.cdf(forecast.lower)
        cdf_high = forecast.distribution.cdf(forecast.upper)
        assert 0.0 <= cdf_low <= cdf_high <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    window=_WINDOWS,
    kappa=st.floats(min_value=0.5, max_value=5.0),
)
def test_kappa_bound_probability_matches_gaussian(window, kappa):
    """For Gaussian metrics, P(lower <= X <= upper) is the kappa coverage,
    independent of the window (Algorithm 1's kappa semantics)."""
    from scipy import stats as scipy_stats

    metric = VariableThresholdingMetric(kappa=kappa)
    forecast = metric.infer(window, t=len(window))
    expected = 2.0 * scipy_stats.norm.cdf(kappa) - 1.0
    actual = forecast.distribution.prob(forecast.lower, forecast.upper)
    assert actual == pytest.approx(expected, abs=1e-9)
