"""SIMULATE + multi-aggregate integration: the PR's acceptance criteria.

Pins the two bit-identity guarantees end to end:

* ``SIMULATE n SEED s`` serialises to byte-identical canonical JSON on
  the sequential, thread, and process backends (deterministic per-series
  seeding via :func:`repro.db.worlds.derive_series_seed`);
* a multi-aggregate select list returns results — and wire payloads —
  bit-identical to running each aggregate as its own statement.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.engine import Database
from repro.db.worlds import (
    WorldSampler,
    conjunctive_range_query,
    derive_series_seed,
)
from repro.exceptions import InvalidParameterError, QueryError
from repro.server.protocol import canonical_dumps, serialize_result
from repro.service import (
    CatalogQueryService,
    MultiSelectResult,
    SimulateResult,
    plan_statement,
)
from repro.store import Catalog
from repro.view.omega import OmegaGrid
from repro.view.sql import parse_statement

H = 20
GRID = OmegaGrid(delta=0.5, n=4)


def _fill_catalog(root, series_count=4, length=90, seed=0) -> Catalog:
    catalog = Catalog(root)
    rng = np.random.default_rng(seed)
    for index in range(series_count):
        series_id = f"sensor-{index:02d}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=H, grid=GRID
        )
        values = 20.0 + index * 0.5 + np.cumsum(
            rng.normal(0.0, 0.15, size=length)
        )
        catalog.append(series_id, values)
    return catalog


@pytest.fixture
def catalog(tmp_path) -> Catalog:
    return _fill_catalog(tmp_path / "catalog")


class TestSimulate:
    def test_bit_identical_across_backends(self, catalog):
        statement = f"SIMULATE 4 SEED 7 FROM CATALOG '{catalog.root}'"
        wires = {}
        for backend in ("sequential", "thread", "process"):
            with CatalogQueryService(catalog, backend=backend) as service:
                result = service.execute(statement)
                wires[backend] = canonical_dumps(serialize_result(result))
        assert wires["sequential"] == wires["thread"]
        assert wires["sequential"] == wires["process"]

    def test_matches_directly_seeded_sampler(self, catalog):
        with CatalogQueryService(catalog, backend="sequential") as service:
            result = service.execute(
                f"SIMULATE 2 SEED 11 FROM CATALOG '{catalog.root}'"
            )
        assert isinstance(result, SimulateResult)
        for entry in result.results:
            view = catalog.view(entry.series_id)
            rng = np.random.default_rng(
                derive_series_seed(11, entry.series_id)
            )
            sampler = WorldSampler(view)
            times = [int(t) for t in view.times]
            for world_rows in entry.result:
                world = sampler.sample(rng)
                assert world_rows == [
                    [t, world.values[t]] for t in times
                ]

    def test_default_seed_is_resolved_and_reproducible(self, catalog):
        with CatalogQueryService(catalog, backend="sequential") as service:
            bare = service.execute(
                f"SIMULATE 3 FROM CATALOG '{catalog.root}'"
            )
            pinned = service.execute(
                f"SIMULATE 3 SEED {bare.seed} FROM CATALOG '{catalog.root}'"
            )
        assert bare.results == pinned.results

    def test_time_window_restricts_sampled_times(self, catalog):
        with CatalogQueryService(catalog, backend="sequential") as service:
            result = service.execute(
                f"SIMULATE 2 SEED 3 FROM CATALOG '{catalog.root}' "
                f"WHERE t BETWEEN 20 AND 25"
            )
        for entry in result.results:
            for world in entry.result:
                assert [t for t, _v in world] == [20, 21, 22, 23, 24, 25]

    def test_engine_dispatches_simulate(self, catalog):
        result = Database().execute(
            f"SIMULATE 2 SEED 5 FROM CATALOG '{catalog.root}'"
        )
        assert isinstance(result, SimulateResult)
        assert result.n_worlds == 2 and result.seed == 5

    def test_wire_payload_shape(self, catalog):
        with CatalogQueryService(catalog, backend="sequential") as service:
            result = service.execute(
                f"SIMULATE 2 SEED 9 FROM CATALOG '{catalog.root}'"
            )
        payload = serialize_result(result)
        assert payload["kind"] == "simulate"
        assert payload["n_worlds"] == 2 and payload["seed"] == 9
        assert payload["matched"] == list(result.matched)
        entry = payload["results"][0]
        assert len(entry["worlds"]) == 2
        t, value = entry["worlds"][0][0]
        assert isinstance(t, int)
        assert value is None or isinstance(value, float)

    def test_invalid_parameters_rejected(self, catalog):
        query = parse_statement(
            f"SIMULATE 2 FROM CATALOG '{catalog.root}'"
        )
        bad = type(query)(
            n_worlds=0,
            catalog_path=query.catalog_path,
        )
        with pytest.raises(InvalidParameterError, match="n_worlds"):
            plan_statement(catalog, bad)


class TestMultiAggregate:
    STATEMENTS = (
        "threshold(0.4)",
        "expected_value",
        "PROBABILITY OF v BETWEEN 20 AND 22",
    )

    def test_bit_identical_to_single_statements(self, catalog):
        with CatalogQueryService(catalog, backend="thread") as service:
            multi = service.execute(
                f"SELECT {', '.join(self.STATEMENTS)} "
                f"FROM CATALOG '{catalog.root}'"
            )
            singles = [
                service.execute(
                    f"SELECT {body} FROM CATALOG '{catalog.root}'"
                )
                for body in self.STATEMENTS
            ]
        assert isinstance(multi, MultiSelectResult)
        payload = serialize_result(multi)
        assert payload["kind"] == "multi_select"
        for item, wire, single in zip(
            multi.items, payload["statements"], singles
        ):
            assert item == single
            assert canonical_dumps(wire) == canonical_dumps(
                serialize_result(single)
            )

    def test_execute_many_mixes_statement_kinds(self, catalog):
        statements = [
            f"SELECT exceedance(21) FROM CATALOG '{catalog.root}'",
            f"SIMULATE 2 SEED 1 FROM CATALOG '{catalog.root}'",
            f"SELECT threshold(0.4), expected_value "
            f"FROM CATALOG '{catalog.root}'",
        ]
        with CatalogQueryService(catalog, backend="thread") as service:
            batch = service.execute_many(statements)
            solo = [service.execute(s) for s in statements]
        for batched, single in zip(batch, solo):
            assert batched == single

    def test_top_k_ranks_each_item_independently(self, catalog):
        with CatalogQueryService(catalog, backend="sequential") as service:
            multi = service.execute(
                f"SELECT threshold(0.4), exceedance(21) "
                f"FROM CATALOG '{catalog.root}' TOP 2"
            )
        for item in multi.items:
            assert len(item.results) == 2
            scores = [entry.score for entry in item.results]
            assert scores == sorted(scores, reverse=True)

    def test_approx_select_list_rejected_when_built_directly(self, catalog):
        import dataclasses

        query = parse_statement(
            f"SELECT threshold(0.4), expected_value "
            f"FROM CATALOG '{catalog.root}'"
        )
        approx = dataclasses.replace(query, approx=True)
        with pytest.raises(QueryError):
            plan_statement(catalog, approx)


class TestProbabilityOfKernel:
    def test_matches_conjunctive_range_query(self, catalog):
        with CatalogQueryService(catalog, backend="sequential") as service:
            result = service.execute(
                f"SELECT PROBABILITY OF v BETWEEN 20 AND 22 "
                f"FROM CATALOG '{catalog.root}'"
            )
        for entry in result.results:
            view = catalog.view(entry.series_id)
            for t, probability in entry.result.items():
                assert probability == pytest.approx(
                    conjunctive_range_query(view, {t: (20.0, 22.0)})
                )
            assert entry.score == pytest.approx(
                max(entry.result.values())
            )


class TestPlanTree:
    def test_logical_plan_explain(self, catalog):
        plan = plan_statement(
            catalog,
            parse_statement(
                f"SELECT threshold(0.4), expected_value "
                f"FROM CATALOG '{catalog.root}' TOP 2"
            ),
        )
        rendered = plan.explain()
        assert "Finalize(top 2)" in rendered
        assert "Combine[exact] x2" in rendered
        assert "threshold(0.4)" in rendered
        assert "Scan" in rendered and "Prune" in rendered

    def test_per_item_plans_match_standalone(self, catalog):
        multi = plan_statement(
            catalog,
            parse_statement(
                f"SELECT threshold(0.4), expected_value "
                f"FROM CATALOG '{catalog.root}'"
            ),
        )
        for body, item in zip(
            ("threshold(0.4)", "expected_value"), multi.items
        ):
            single = plan_statement(
                catalog,
                parse_statement(
                    f"SELECT {body} FROM CATALOG '{catalog.root}'"
                ),
            )
            assert item.stats == single.stats
            assert [t.cache_key for t in item.tasks] == [
                t.cache_key for t in single.tasks
            ]

    def test_simulate_plan_label_names_seed(self, catalog):
        plan = plan_statement(
            catalog,
            parse_statement(
                f"SIMULATE 8 SEED 3 FROM CATALOG '{catalog.root}'"
            ),
        )
        assert "simulate(8 worlds, seed 3)" in plan.describe()
