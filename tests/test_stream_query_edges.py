"""Edge cases of the windowed stream queries (empty / short / gappy views)."""

from __future__ import annotations

import pytest

from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.db.stream_queries import (
    exceedance_probability,
    expected_time_above,
    sustained_exceedance_probability,
    windowed_expected_value,
)
from repro.exceptions import InvalidParameterError

WINDOWED = [
    lambda view, window: windowed_expected_value(view, window),
    lambda view, window: sustained_exceedance_probability(view, 10.0, window),
    lambda view, window: expected_time_above(view, 10.0, window),
]
IDS = ["windowed_expected_value", "sustained_exceedance", "expected_time_above"]


def _view(times) -> ProbabilisticView:
    tuples = [
        ProbTuple(t=t, low=0.0, high=10.0, probability=0.4)
        for t in times
    ] + [
        ProbTuple(t=t, low=10.0, high=20.0, probability=0.6)
        for t in times
    ]
    return ProbabilisticView("v", tuples)


@pytest.mark.parametrize("query", WINDOWED, ids=IDS)
def test_empty_view_returns_empty(query):
    assert query(_view([]), 3) == {}


def test_exceedance_on_empty_view():
    assert exceedance_probability(_view([]), 10.0) == {}


@pytest.mark.parametrize("query", WINDOWED, ids=IDS)
def test_window_longer_than_series_raises(query):
    with pytest.raises(InvalidParameterError):
        query(_view([1, 2, 3]), 4)


@pytest.mark.parametrize("query", WINDOWED, ids=IDS)
def test_non_positive_window_raises(query):
    with pytest.raises(InvalidParameterError):
        query(_view([1, 2, 3]), 0)


@pytest.mark.parametrize("query", WINDOWED, ids=IDS)
def test_non_contiguous_times_raise(query):
    with pytest.raises(InvalidParameterError) as info:
        query(_view([1, 3, 5, 7]), 2)
    assert "non-contiguous" in str(info.value)


@pytest.mark.parametrize("query", WINDOWED, ids=IDS)
def test_window_equal_to_series_length(query):
    out = query(_view([4, 5, 6]), 3)
    assert list(out) == [6]  # Exactly one full window, keyed by its end.


def test_exceedance_allows_gaps():
    # The per-time query has no window semantics, so gaps stay legal.
    out = exceedance_probability(_view([1, 5, 9]), 10.0)
    assert set(out) == {1, 5, 9}
