"""Tests for the service batch entry point and shutdown-race hardening.

Covers the pieces the query server builds on: ``execute_many`` (dedup +
single-pool fan-out, result order preserved, parity with one-at-a-time
execution), the closed-pool race fix (a ``close()`` racing a late
statement surfaces as :class:`QueryError`, never a bare ``RuntimeError``
traceback), and the catalog's stat-token snapshot memoisation that lets
many connections re-plan against an unchanged series for free.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import QueryError, ReproError
from repro.service import CatalogQueryService
from repro.store import Catalog
from repro.view.omega import OmegaGrid

H = 16
GRID = OmegaGrid(delta=0.5, n=4)


@pytest.fixture(scope="module")
def catalog_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("service-batch") / "cat"
    catalog = Catalog(root)
    rng = np.random.default_rng(11)
    for index in range(6):
        series_id = f"sensor-{index}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=H, grid=GRID
        )
        values = 20.0 + 0.1 * index + np.cumsum(
            rng.normal(0.0, 0.05, size=40)
        )
        catalog.append(series_id, values)
    return root


def _statements(root) -> list[str]:
    return [
        f"SELECT exceedance(20.5) FROM CATALOG '{root}'",
        f"SELECT expected_value FROM CATALOG '{root}' SERIES 'sensor-[0-2]'",
        f"SELECT exceedance(20.5) FROM CATALOG '{root}'",  # Duplicate.
        f"SELECT threshold(0.2) FROM CATALOG '{root}' TOP 2",
    ]


class TestExecuteMany:
    def test_matches_one_at_a_time_execution(self, catalog_root):
        with CatalogQueryService(catalog_root, max_workers=4) as service:
            batched = service.execute_many(_statements(catalog_root))
            singles = [
                service.execute(statement)
                for statement in _statements(catalog_root)
            ]
        assert len(batched) == 4
        for batch_result, single in zip(batched, singles):
            assert batch_result.aggregate == single.aggregate
            assert batch_result.matched == single.matched
            assert batch_result.scores() == single.scores()

    def test_duplicates_share_one_execution(self, catalog_root):
        with CatalogQueryService(catalog_root, max_workers=1) as service:
            results = service.execute_many(_statements(catalog_root))
            # Identical statements come back as the same result object —
            # planned and executed exactly once.
            assert results[0] is results[2]
            # The cache saw each matched series once, not once per copy.
            stats = service.cache.stats
            assert stats.misses == 6

    def test_sequential_and_parallel_agree(self, catalog_root):
        statements = _statements(catalog_root)
        with CatalogQueryService(catalog_root, max_workers=1) as seq:
            sequential = seq.execute_many(statements)
        with CatalogQueryService(catalog_root, max_workers=4) as par:
            parallel = par.execute_many(statements)
        for left, right in zip(sequential, parallel):
            assert left.scores() == right.scores()

    def test_empty_batch(self, catalog_root):
        with CatalogQueryService(catalog_root) as service:
            assert service.execute_many([]) == []

    def test_foreign_catalog_rejected(self, catalog_root, tmp_path):
        with CatalogQueryService(catalog_root) as service:
            with pytest.raises(QueryError, match="bound to"):
                service.execute_many(
                    [f"SELECT expected_value FROM CATALOG '{tmp_path}'"]
                )


class TestClosedPoolRace:
    def test_shutdown_pool_maps_to_query_error(self, catalog_root):
        service = CatalogQueryService(catalog_root, max_workers=4)
        statement = f"SELECT expected_value FROM CATALOG '{catalog_root}'"
        service.execute(statement)  # Builds the persistent pool.
        assert service.backend._pool is not None
        # Simulate the shutdown race: the pool dies under a live service
        # reference (what a Ctrl-C teardown interleaved with a late
        # statement produces) without the service-level closed flag.
        service.backend._pool.shutdown(wait=True)
        with pytest.raises(QueryError, match="shut down"):
            service.execute(statement)

    def test_close_makes_further_statements_fail_clearly(self, catalog_root):
        statement = f"SELECT expected_value FROM CATALOG '{catalog_root}'"
        service = CatalogQueryService(catalog_root, max_workers=4)
        assert service.execute(statement).results
        service.close()
        service.close()  # Idempotent.
        with pytest.raises(QueryError, match="service closed"):
            service.execute(statement)
        with pytest.raises(QueryError, match="service closed"):
            service.execute_many([statement])

    def test_concurrent_close_never_leaks_runtime_error(self, catalog_root):
        statement = f"SELECT exceedance(20.5) FROM CATALOG '{catalog_root}'"
        surprises: list[BaseException] = []

        for _ in range(8):
            service = CatalogQueryService(catalog_root, max_workers=4)
            service.execute(statement)
            started = threading.Event()

            def hammer(service=service) -> None:
                started.set()
                for _ in range(5):
                    try:
                        service.execute(statement)
                    except ReproError:
                        pass  # The documented shutdown outcome.
                    except BaseException as exc:  # noqa: BLE001
                        surprises.append(exc)
                        return

            thread = threading.Thread(target=hammer)
            thread.start()
            started.wait(5)
            service.close()
            thread.join(10)
        assert not surprises, surprises[0]


class TestSnapshotReuse:
    def test_unchanged_series_snapshot_is_cached(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        catalog.create_series(
            "s", metric="variable_threshold", H=H, grid=GRID
        )
        catalog.append("s", 20.0 + np.arange(30) * 0.01)
        first = catalog.snapshot("s")
        second = catalog.snapshot("s")
        assert second is first
        hits, misses = catalog.snapshot_cache_info()
        assert (hits, misses) == (1, 1)

    def test_append_invalidates_by_stat_token(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        catalog.create_series(
            "s", metric="variable_threshold", H=H, grid=GRID
        )
        catalog.append("s", 20.0 + np.arange(30) * 0.01)
        before = catalog.snapshot("s")
        catalog.append("s", np.full(5, 20.5))
        after = catalog.snapshot("s")
        assert after is not before
        assert after.generation != before.generation
        assert after.tuple_count > before.tuple_count

    def test_writer_and_reader_catalogs_stay_coherent(self, tmp_path):
        root = tmp_path / "cat"
        writer = Catalog(root)
        writer.create_series(
            "s", metric="variable_threshold", H=H, grid=GRID
        )
        writer.append("s", 20.0 + np.arange(40) * 0.01)
        reader = Catalog(root, create=False)
        stale = reader.snapshot("s")
        writer.append("s", np.full(8, 20.3))
        fresh = reader.snapshot("s")
        # The reader's memo must not survive the writer's atomic rewrite.
        assert fresh.tuple_count == writer.snapshot("s").tuple_count
        assert fresh.tuple_count > stale.tuple_count

    def test_open_many_reuses_snapshots(self, catalog_root):
        catalog = Catalog(catalog_root, create=False)
        catalog.open_many("sensor-*")
        hits_before, misses = catalog.snapshot_cache_info()
        catalog.open_many("sensor-*")
        hits_after, misses_after = catalog.snapshot_cache_info()
        assert misses_after == misses  # No re-reads...
        assert hits_after == hits_before + 6  # ... all six served cached.

    def test_drop_series_clears_memo(self, tmp_path):
        catalog = Catalog(tmp_path / "cat")
        catalog.create_series(
            "s", metric="variable_threshold", H=H, grid=GRID
        )
        catalog.append("s", 20.0 + np.arange(30) * 0.01)
        catalog.snapshot("s")
        catalog.drop_series("s")
        with pytest.raises(QueryError):
            catalog.snapshot("s")
