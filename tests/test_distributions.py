"""Tests for the Gaussian, Uniform and Histogram distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.gaussian import Gaussian
from repro.distributions.histogram import HistogramDistribution
from repro.distributions.uniform import Uniform
from repro.exceptions import DataError, InvalidParameterError


class TestGaussian:
    def test_moments(self):
        g = Gaussian(3.0, 4.0)
        assert g.mean() == 3.0
        assert g.variance() == 4.0
        assert g.std() == 2.0

    def test_cdf_symmetry(self):
        g = Gaussian(1.0, 2.0)
        assert g.cdf(1.0) == pytest.approx(0.5)
        assert g.cdf(0.0) + g.cdf(2.0) == pytest.approx(1.0)

    def test_three_sigma_rule(self):
        g = Gaussian(0.0, 1.0)
        assert g.prob(-3.0, 3.0) == pytest.approx(0.9973, abs=1e-4)

    def test_ppf_inverts_cdf(self):
        g = Gaussian(-2.0, 9.0)
        for u in (0.01, 0.25, 0.5, 0.75, 0.99):
            assert g.cdf(g.ppf(u)) == pytest.approx(u, abs=1e-10)

    def test_pdf_integrates_to_one(self):
        g = Gaussian(5.0, 0.25)
        x = np.linspace(0.0, 10.0, 20001)
        integral = np.trapezoid(g.pdf(x), x)
        assert integral == pytest.approx(1.0, abs=1e-6)

    def test_vectorised_matches_scalar(self):
        g = Gaussian(0.0, 1.0)
        xs = np.array([-1.0, 0.0, 1.0])
        np.testing.assert_allclose(g.cdf(xs), [g.cdf(x) for x in xs])

    def test_interval_coverage(self):
        g = Gaussian(0.0, 1.0)
        low, high = g.interval(0.95)
        assert low == pytest.approx(-1.95996, abs=1e-4)
        assert high == pytest.approx(1.95996, abs=1e-4)

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            Gaussian(0.0, 0.0)
        with pytest.raises(InvalidParameterError):
            Gaussian(float("nan"), 1.0)

    def test_ppf_domain_checked(self):
        with pytest.raises(InvalidParameterError):
            Gaussian(0.0, 1.0).ppf(1.5)

    def test_shifted_keeps_variance(self):
        g = Gaussian(1.0, 4.0).shifted(10.0)
        assert g.mu == 10.0 and g.sigma2 == 4.0

    def test_equality_and_hash(self):
        assert Gaussian(1.0, 2.0) == Gaussian(1.0, 2.0)
        assert hash(Gaussian(1.0, 2.0)) == hash(Gaussian(1.0, 2.0))
        assert Gaussian(1.0, 2.0) != Gaussian(1.0, 3.0)

    def test_sampling_moments(self):
        g = Gaussian(2.0, 9.0)
        samples = g.sample(20000, rng=0)
        assert np.mean(samples) == pytest.approx(2.0, abs=0.1)
        assert np.std(samples) == pytest.approx(3.0, abs=0.1)


class TestUniform:
    def test_moments(self):
        u = Uniform(2.0, 6.0)
        assert u.mean() == 4.0
        assert u.variance() == pytest.approx(16.0 / 12.0)

    def test_centered_constructor(self):
        u = Uniform.centered(10.0, 0.5)
        assert (u.low, u.high) == (9.5, 10.5)

    def test_centered_rejects_bad_width(self):
        with pytest.raises(InvalidParameterError):
            Uniform.centered(0.0, 0.0)

    def test_cdf_clamps_outside_support(self):
        u = Uniform(0.0, 1.0)
        assert u.cdf(-1.0) == 0.0
        assert u.cdf(2.0) == 1.0

    def test_pdf_zero_outside(self):
        u = Uniform(0.0, 2.0)
        assert u.pdf(-0.1) == 0.0
        assert u.pdf(1.0) == 0.5

    def test_ppf_linear(self):
        u = Uniform(0.0, 10.0)
        assert u.ppf(0.3) == pytest.approx(3.0)

    def test_degenerate_rejected(self):
        with pytest.raises(InvalidParameterError):
            Uniform(1.0, 1.0)

    def test_prob_of_subinterval(self):
        u = Uniform(0.0, 4.0)
        assert u.prob(1.0, 2.0) == pytest.approx(0.25)


class TestHistogram:
    def test_from_samples_basic(self, rng):
        samples = rng.uniform(0.0, 1.0, size=5000)
        hist = HistogramDistribution.from_samples(samples, n_bins=10,
                                                  support=(0.0, 1.0))
        assert hist.cdf(0.0) == 0.0
        assert hist.cdf(1.0) == 1.0
        assert hist.cdf(0.5) == pytest.approx(0.5, abs=0.05)

    def test_cdf_monotone(self, rng):
        samples = rng.normal(size=500)
        hist = HistogramDistribution.from_samples(samples, n_bins=15)
        grid = np.linspace(samples.min(), samples.max(), 100)
        cdf = hist.cdf(grid)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_ppf_inverts_cdf_inside_support(self, rng):
        samples = rng.normal(size=1000)
        hist = HistogramDistribution.from_samples(samples, n_bins=20)
        for u in (0.1, 0.5, 0.9):
            assert hist.cdf(hist.ppf(u)) == pytest.approx(u, abs=1e-9)

    def test_mean_of_symmetric_samples(self, rng):
        samples = np.concatenate([rng.normal(-1, 0.1, 500), rng.normal(1, 0.1, 500)])
        hist = HistogramDistribution.from_samples(samples, n_bins=40)
        assert hist.mean() == pytest.approx(0.0, abs=0.05)

    def test_degenerate_samples_padded(self):
        hist = HistogramDistribution.from_samples(np.full(10, 3.0), n_bins=4)
        # All mass sits in the bin just above 3.0 (support padded to +-0.5);
        # the interpolated CDF rises from 0 to 1 across that bin.
        assert hist.cdf(3.1) > 0.0
        assert hist.cdf(3.5) == 1.0

    def test_explicit_edges_validation(self):
        with pytest.raises(DataError):
            HistogramDistribution(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        with pytest.raises(DataError):
            HistogramDistribution(np.array([0.0, 0.0]), np.array([1.0]))
        with pytest.raises(DataError):
            HistogramDistribution(np.array([0.0, 1.0]), np.array([-1.0]))

    def test_variance_positive(self, rng):
        hist = HistogramDistribution.from_samples(rng.normal(size=300), n_bins=10)
        assert hist.variance() > 0.0


@settings(max_examples=50, deadline=None)
@given(
    mu=st.floats(min_value=-100, max_value=100),
    sigma2=st.floats(min_value=1e-4, max_value=1e4),
    a=st.floats(min_value=-50, max_value=50),
    b=st.floats(min_value=-50, max_value=50),
)
def test_gaussian_cdf_monotone_property(mu, sigma2, a, b):
    g = Gaussian(mu, sigma2)
    lo, hi = min(a, b), max(a, b)
    assert g.cdf(lo) <= g.cdf(hi) + 1e-12


@settings(max_examples=50, deadline=None)
@given(
    low=st.floats(min_value=-100, max_value=99),
    width=st.floats(min_value=1e-3, max_value=100),
    u=st.floats(min_value=0.0, max_value=1.0),
)
def test_uniform_ppf_cdf_roundtrip_property(low, width, u):
    dist = Uniform(low, low + width)
    assert dist.cdf(dist.ppf(u)) == pytest.approx(u, abs=1e-9)
