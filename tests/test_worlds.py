"""Tests for the possible-worlds sampler and Monte Carlo query engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.db.worlds import (
    WorldSampler,
    conjunctive_range_query,
    monte_carlo_query,
)
from repro.exceptions import InvalidParameterError


def _view(p1=0.6, p2=0.4, leftover=0.0) -> ProbabilisticView:
    """Two times, two ranges; optional residual mass outside the grid."""
    scale = 1.0 - leftover
    tuples = [
        ProbTuple(t=1, low=0.0, high=1.0, probability=p1 * scale),
        ProbTuple(t=1, low=1.0, high=2.0, probability=(1 - p1) * scale),
        ProbTuple(t=2, low=0.0, high=1.0, probability=p2 * scale),
        ProbTuple(t=2, low=1.0, high=2.0, probability=(1 - p2) * scale),
    ]
    return ProbabilisticView("w", tuples)


class TestWorldSampler:
    def test_world_has_value_per_time(self):
        sampler = WorldSampler(_view())
        world = sampler.sample(rng=0)
        assert set(world.values) == {1, 2}

    def test_values_fall_in_some_range(self):
        sampler = WorldSampler(_view())
        for seed in range(20):
            world = sampler.sample(rng=seed)
            for t in (1, 2):
                value = world.value_at(t)
                assert value is not None
                assert 0.0 <= value <= 2.0

    def test_leftover_mass_yields_outside_worlds(self):
        sampler = WorldSampler(_view(leftover=0.5))
        rng = np.random.default_rng(0)
        outside = sum(
            sampler.sample(rng).value_at(1) is None for _ in range(400)
        )
        assert outside / 400 == pytest.approx(0.5, abs=0.1)

    def test_range_frequencies_match_probabilities(self):
        sampler = WorldSampler(_view(p1=0.8))
        rng = np.random.default_rng(1)
        hits = sum(
            sampler.sample(rng).in_range(1, 0.0, 1.0) for _ in range(1500)
        )
        assert hits / 1500 == pytest.approx(0.8, abs=0.05)

    def test_world_unknown_time_rejected(self):
        world = WorldSampler(_view()).sample(rng=0)
        with pytest.raises(InvalidParameterError):
            world.value_at(99)


class TestMonteCarloQuery:
    def test_indicator_matches_exact(self):
        view = _view(p1=0.6, p2=0.4)
        estimate = monte_carlo_query(
            view,
            lambda world: float(world.in_range(1, 0.0, 1.0)),
            n_samples=3000,
            rng=2,
        )
        assert estimate.mean == pytest.approx(0.6, abs=0.05)
        low, high = estimate.confidence_interval()
        assert low < 0.6 < high

    def test_conjunction_matches_product(self):
        view = _view(p1=0.6, p2=0.4)
        estimate = monte_carlo_query(
            view,
            lambda world: float(
                world.in_range(1, 0.0, 1.0) and world.in_range(2, 0.0, 1.0)
            ),
            n_samples=4000,
            rng=3,
        )
        assert estimate.mean == pytest.approx(0.24, abs=0.04)

    def test_aggregate_functional(self):
        view = _view(p1=0.5, p2=0.5)
        estimate = monte_carlo_query(
            view,
            lambda world: sum(
                1.0 for value in world.values.values()
                if value is not None and value >= 1.0
            ),
            n_samples=3000,
            rng=4,
        )
        assert estimate.mean == pytest.approx(1.0, abs=0.1)

    def test_standard_error_shrinks_with_samples(self):
        view = _view()
        def indicator(world):
            return float(world.in_range(1, 0.0, 1.0))

        small = monte_carlo_query(view, indicator, n_samples=100, rng=5)
        large = monte_carlo_query(view, indicator, n_samples=6400, rng=5)
        assert large.standard_error < small.standard_error

    def test_n_samples_validation(self):
        with pytest.raises(InvalidParameterError):
            monte_carlo_query(_view(), lambda w: 0.0, n_samples=1)


class TestConjunctiveRangeQuery:
    def test_product_over_times(self):
        view = _view(p1=0.6, p2=0.4)
        probability = conjunctive_range_query(
            view, {1: (0.0, 1.0), 2: (0.0, 1.0)}
        )
        assert probability == pytest.approx(0.24)

    def test_partial_overlap_scales(self):
        view = _view(p1=0.6)
        probability = conjunctive_range_query(view, {1: (0.0, 0.5)})
        assert probability == pytest.approx(0.3)

    def test_disjoint_range_gives_zero(self):
        view = _view()
        assert conjunctive_range_query(view, {1: (5.0, 6.0)}) == 0.0

    def test_agreement_with_monte_carlo(self):
        view = _view(p1=0.7, p2=0.3)
        predicates = {1: (0.0, 1.0), 2: (1.0, 2.0)}
        exact = conjunctive_range_query(view, predicates)
        estimate = monte_carlo_query(
            view,
            lambda world: float(
                all(world.in_range(t, *bounds)
                    for t, bounds in predicates.items())
            ),
            n_samples=5000,
            rng=6,
        )
        assert estimate.mean == pytest.approx(exact, abs=0.04)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            conjunctive_range_query(_view(), {})
        with pytest.raises(InvalidParameterError):
            conjunctive_range_query(_view(), {1: (2.0, 1.0)})
