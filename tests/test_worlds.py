"""Tests for the possible-worlds sampler and Monte Carlo query engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.db.worlds import (
    WorldSampler,
    conjunctive_range_query,
    derive_series_seed,
    monte_carlo_query,
)
from repro.exceptions import InvalidParameterError


def _view(p1=0.6, p2=0.4, leftover=0.0) -> ProbabilisticView:
    """Two times, two ranges; optional residual mass outside the grid."""
    scale = 1.0 - leftover
    tuples = [
        ProbTuple(t=1, low=0.0, high=1.0, probability=p1 * scale),
        ProbTuple(t=1, low=1.0, high=2.0, probability=(1 - p1) * scale),
        ProbTuple(t=2, low=0.0, high=1.0, probability=p2 * scale),
        ProbTuple(t=2, low=1.0, high=2.0, probability=(1 - p2) * scale),
    ]
    return ProbabilisticView("w", tuples)


class _StubView:
    """A minimal view-shaped object for block layouts the real
    :class:`ProbabilisticView` cannot represent (empty blocks, point-mass
    tuples built outside the constructor's validation)."""

    def __init__(self, blocks):
        self._blocks = blocks

    @property
    def times(self):
        return sorted(self._blocks)

    def tuples_at(self, t):
        return self._blocks[t]


class _Tup:
    """A bare range tuple (ProbTuple validates ``high > low``)."""

    def __init__(self, t, low, high, probability):
        self.t, self.low, self.high = t, low, high
        self.probability = probability


class _ZeroFirstUniform(np.random.Generator):
    """A generator whose *first* unit-uniform draw is exactly 0.0 — the
    adversarial value that lands on a flat cumulative step."""

    def __init__(self):
        super().__init__(np.random.PCG64(0))
        self._armed = True

    def uniform(self, low=0.0, high=1.0, size=None):
        if self._armed and low == 0.0 and high == 1.0 and size is None:
            self._armed = False
            return 0.0
        return super().uniform(low, high, size)


class TestWorldSampler:
    def test_world_has_value_per_time(self):
        sampler = WorldSampler(_view())
        world = sampler.sample(rng=0)
        assert set(world.values) == {1, 2}

    def test_values_fall_in_some_range(self):
        sampler = WorldSampler(_view())
        for seed in range(20):
            world = sampler.sample(rng=seed)
            for t in (1, 2):
                value = world.value_at(t)
                assert value is not None
                assert 0.0 <= value <= 2.0

    def test_leftover_mass_yields_outside_worlds(self):
        sampler = WorldSampler(_view(leftover=0.5))
        rng = np.random.default_rng(0)
        outside = sum(
            sampler.sample(rng).value_at(1) is None for _ in range(400)
        )
        assert outside / 400 == pytest.approx(0.5, abs=0.1)

    def test_range_frequencies_match_probabilities(self):
        sampler = WorldSampler(_view(p1=0.8))
        rng = np.random.default_rng(1)
        hits = sum(
            sampler.sample(rng).in_range(1, 0.0, 1.0) for _ in range(1500)
        )
        assert hits / 1500 == pytest.approx(0.8, abs=0.05)

    def test_world_unknown_time_rejected(self):
        world = WorldSampler(_view()).sample(rng=0)
        with pytest.raises(InvalidParameterError):
            world.value_at(99)

    def test_empty_tuple_block_yields_outside(self):
        # Regression: an empty block used to raise IndexError on
        # ``cumulative[-1]``; it must deterministically be OUTSIDE.
        tuples = {
            1: [],
            2: [
                _Tup(2, 0.0, 1.0, 0.5),
                _Tup(2, 1.0, 2.0, 0.5),
            ],
        }
        world = WorldSampler(_StubView(tuples)).sample(rng=0)
        assert world.value_at(1) is None
        assert world.value_at(2) is not None

    def test_empty_block_consumes_no_draw(self):
        # The stream must stay aligned: a view with an extra empty block
        # samples the shared times identically under the same seed.
        shared = [_Tup(2, 0.0, 1.0, 0.6), _Tup(2, 1.0, 2.0, 0.4)]
        with_empty = WorldSampler(_StubView({1: [], 2: shared}))
        without = WorldSampler(_StubView({2: shared}))
        for seed in range(10):
            assert (
                with_empty.sample(rng=seed).value_at(2)
                == without.sample(rng=seed).value_at(2)
            )

    def test_zero_probability_alternative_never_selected(self):
        # cumulative = [0.0, 1.0]; u == 0.0 lands exactly on the flat
        # step of the rho=0 first tuple — side="right" must skip it.
        tuples = {
            1: [
                _Tup(1, 0.0, 1.0, 0.0),
                _Tup(1, 1.0, 2.0, 1.0),
            ]
        }
        sampler = WorldSampler(_StubView(tuples))
        value = sampler.sample(_ZeroFirstUniform()).value_at(1)
        assert value is not None and 1.0 <= value < 2.0

    def test_in_range_is_half_open(self):
        world = WorldSampler(_view()).sample(rng=0)
        t = 1
        value = world.value_at(t)
        assert world.in_range(t, value, value + 1.0)
        assert not world.in_range(t, value - 1.0, value)  # high excluded


class TestDeriveSeriesSeed:
    def test_deterministic_and_distinct(self):
        assert derive_series_seed(42, "a") == derive_series_seed(42, "a")
        assert derive_series_seed(42, "a") != derive_series_seed(42, "b")
        assert derive_series_seed(42, "a") != derive_series_seed(43, "a")

    def test_pins_known_value(self):
        # Cross-platform stability contract: SHA-256 of the canonical
        # string, first 8 bytes big-endian.  A change here silently
        # breaks SIMULATE reproducibility for stored seeds.
        import hashlib

        digest = hashlib.sha256(b"repro.worlds:7:sensor-00").digest()
        expected = int.from_bytes(digest[:8], "big")
        assert derive_series_seed(7, "sensor-00") == expected


class TestMonteCarloQuery:
    def test_indicator_matches_exact(self):
        view = _view(p1=0.6, p2=0.4)
        estimate = monte_carlo_query(
            view,
            lambda world: float(world.in_range(1, 0.0, 1.0)),
            n_samples=3000,
            rng=2,
        )
        assert estimate.mean == pytest.approx(0.6, abs=0.05)
        low, high = estimate.confidence_interval()
        assert low < 0.6 < high

    def test_conjunction_matches_product(self):
        view = _view(p1=0.6, p2=0.4)
        estimate = monte_carlo_query(
            view,
            lambda world: float(
                world.in_range(1, 0.0, 1.0) and world.in_range(2, 0.0, 1.0)
            ),
            n_samples=4000,
            rng=3,
        )
        assert estimate.mean == pytest.approx(0.24, abs=0.04)

    def test_aggregate_functional(self):
        view = _view(p1=0.5, p2=0.5)
        estimate = monte_carlo_query(
            view,
            lambda world: sum(
                1.0 for value in world.values.values()
                if value is not None and value >= 1.0
            ),
            n_samples=3000,
            rng=4,
        )
        assert estimate.mean == pytest.approx(1.0, abs=0.1)

    def test_standard_error_shrinks_with_samples(self):
        view = _view()
        def indicator(world):
            return float(world.in_range(1, 0.0, 1.0))

        small = monte_carlo_query(view, indicator, n_samples=100, rng=5)
        large = monte_carlo_query(view, indicator, n_samples=6400, rng=5)
        assert large.standard_error < small.standard_error

    def test_n_samples_validation(self):
        with pytest.raises(InvalidParameterError):
            monte_carlo_query(_view(), lambda w: 0.0, n_samples=1)


class TestConjunctiveRangeQuery:
    def test_product_over_times(self):
        view = _view(p1=0.6, p2=0.4)
        probability = conjunctive_range_query(
            view, {1: (0.0, 1.0), 2: (0.0, 1.0)}
        )
        assert probability == pytest.approx(0.24)

    def test_partial_overlap_scales(self):
        view = _view(p1=0.6)
        probability = conjunctive_range_query(view, {1: (0.0, 0.5)})
        assert probability == pytest.approx(0.3)

    def test_disjoint_range_gives_zero(self):
        view = _view()
        assert conjunctive_range_query(view, {1: (5.0, 6.0)}) == 0.0

    def test_agreement_with_monte_carlo(self):
        view = _view(p1=0.7, p2=0.3)
        predicates = {1: (0.0, 1.0), 2: (1.0, 2.0)}
        exact = conjunctive_range_query(view, predicates)
        estimate = monte_carlo_query(
            view,
            lambda world: float(
                all(world.in_range(t, *bounds)
                    for t, bounds in predicates.items())
            ),
            n_samples=5000,
            rng=6,
        )
        assert estimate.mean == pytest.approx(exact, abs=0.04)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            conjunctive_range_query(_view(), {})
        with pytest.raises(InvalidParameterError):
            conjunctive_range_query(_view(), {1: (2.0, 1.0)})

    def test_inverted_predicate_rejected_before_any_factor(self):
        # Every predicate is validated up front: an inverted range at a
        # later time raises even when an earlier factor is already 0.
        view = _view()
        with pytest.raises(InvalidParameterError, match="inverted"):
            conjunctive_range_query(
                view, {1: (5.0, 6.0), 2: (2.0, 1.0)}
            )

    def test_degenerate_predicate_is_empty(self):
        # [a, a) selects nothing under half-open semantics.
        assert conjunctive_range_query(_view(), {1: (0.5, 0.5)}) == 0.0

    def test_point_mass_tuple(self):
        # A zero-width tuple is a point mass: all or nothing, never a
        # division by zero width.
        blocks = {
            1: [
                _Tup(1, 1.0, 1.0, 0.25),
                _Tup(1, 2.0, 3.0, 0.75),
            ]
        }
        view = _StubView(blocks)
        assert conjunctive_range_query(
            view, {1: (0.5, 1.5)}
        ) == pytest.approx(0.25)
        # The point sits at the predicate's (excluded) high edge.
        assert conjunctive_range_query(view, {1: (0.0, 1.0)}) == 0.0

    def test_half_open_boundary_matches_sampler(self):
        # A predicate ending exactly at a tuple boundary takes none of
        # the upper tuple's mass.
        view = _view(p1=0.6)
        assert conjunctive_range_query(
            view, {1: (0.0, 1.0)}
        ) == pytest.approx(0.6)


class TestMonteCarloConvergence:
    """Hypothesis: MC estimates agree with the exact answers within CI."""

    @settings(max_examples=20, deadline=None)
    @given(
        p1=st.floats(0.05, 0.95),
        p2=st.floats(0.05, 0.95),
        leftover=st.floats(0.0, 0.5),
        cut=st.floats(0.2, 1.8),
        seed=st.integers(0, 2**16),
    )
    def test_estimate_within_interval_of_exact(
        self, p1, p2, leftover, cut, seed
    ):
        view = _view(p1=p1, p2=p2, leftover=leftover)
        predicates = {1: (0.0, cut), 2: (cut / 2, 2.0)}
        exact = conjunctive_range_query(view, predicates)
        estimate = monte_carlo_query(
            view,
            lambda world: float(
                all(
                    world.in_range(t, *bounds)
                    for t, bounds in predicates.items()
                )
            ),
            n_samples=1200,
            rng=seed,
        )
        # z=5 keeps the false-failure probability negligible (~1e-6 per
        # example); the epsilon floor covers exact == 0/1 edges where
        # the normal approximation collapses.
        low, high = estimate.confidence_interval(z=5.0)
        assert low - 0.01 <= exact <= high + 0.01
