"""Unit tests for the CI benchmark-regression gate.

The gate must (a) pass on the committed baselines — CI starts green —
and (b) demonstrably fail when a slowdown is injected into a fresh
result, which is the entire point of having it.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_gate():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    # Registered before exec so the dataclass machinery can resolve the
    # module's (string) annotations.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def gate():
    return _load_gate()


@pytest.fixture(scope="module")
def baseline_dir(gate):
    return gate.BASELINE_DIR


class TestCommittedBaselines:
    def test_every_spec_has_a_committed_baseline(self, gate, baseline_dir):
        for name in gate.SPECS:
            assert (baseline_dir / name).exists(), name

    def test_committed_results_pass_their_own_gate(self, gate, baseline_dir):
        # Fresh = the repo-root BENCH files, baseline = the committed
        # copies; the tree must always gate green as committed.
        failures, notes = gate.check_files(
            sorted(gate.SPECS),
            fresh_dir=REPO_ROOT,
            baseline_dir=baseline_dir,
        )
        assert failures == []
        assert notes  # Something was actually checked.

    def test_main_exit_codes(self, gate):
        assert gate.main([]) == 0


class TestInjectedSlowdown:
    def _copy_tree(self, gate, tmp_path) -> Path:
        fresh_dir = tmp_path / "fresh"
        fresh_dir.mkdir()
        for name in gate.SPECS:
            fresh_dir.joinpath(name).write_text(
                (REPO_ROOT / name).read_text()
            )
        return fresh_dir

    def _degrade(self, path: Path, dotted: str, factor: float) -> None:
        payload = json.loads(path.read_text())
        node = payload
        parts = dotted.split(".")
        for part in parts[:-1]:
            node = node[part]
        node[parts[-1]] = node[parts[-1]] * factor
        path.write_text(json.dumps(payload))

    def test_store_slowdown_fails_the_gate(self, gate, tmp_path):
        fresh_dir = self._copy_tree(gate, tmp_path)
        self._degrade(
            fresh_dir / "BENCH_store.json",
            "headline.roundtrip_speedup_at_max_T",
            0.02,  # The binary-vs-CSV win collapses 50x.
        )
        failures, _ = gate.check_files(
            ["BENCH_store.json"],
            fresh_dir=fresh_dir,
            baseline_dir=gate.BASELINE_DIR,
        )
        assert len(failures) == 1
        assert "roundtrip_speedup_at_max_T" in failures[0]

    def test_append_latency_blowup_fails_the_gate(self, gate, tmp_path):
        fresh_dir = self._copy_tree(gate, tmp_path)
        self._degrade(
            fresh_dir / "BENCH_store.json",
            "headline.append_latency_ratio_max_vs_min_T",
            20.0,  # Appends now scale with stored size: a regression.
        )
        failures, _ = gate.check_files(
            ["BENCH_store.json"],
            fresh_dir=fresh_dir,
            baseline_dir=gate.BASELINE_DIR,
        )
        assert any(
            "append_latency_ratio_max_vs_min_T" in failure
            for failure in failures
        )

    def test_server_parity_loss_fails_the_gate(self, gate, tmp_path):
        fresh_dir = self._copy_tree(gate, tmp_path)
        payload = json.loads(
            (fresh_dir / "BENCH_server.json").read_text()
        )
        payload["headline"]["batched_vs_unbatched"] = 0.5  # Batched slower.
        payload["bit_identical"] = False
        (fresh_dir / "BENCH_server.json").write_text(json.dumps(payload))
        failures, _ = gate.check_files(
            ["BENCH_server.json"],
            fresh_dir=fresh_dir,
            baseline_dir=gate.BASELINE_DIR,
        )
        assert len(failures) == 2

    def test_main_exits_nonzero_on_regression(self, gate, tmp_path):
        fresh_dir = self._copy_tree(gate, tmp_path)
        self._degrade(
            fresh_dir / "BENCH_columnar.json",
            "sizes.100000.view_build.speedup",
            0.01,
        )
        assert gate.main(["--fresh-dir", str(fresh_dir)]) == 1

    def test_missing_fresh_file_fails(self, gate, tmp_path):
        failures, _ = gate.check_files(
            ["BENCH_service.json"],
            fresh_dir=tmp_path,
            baseline_dir=gate.BASELINE_DIR,
        )
        assert failures and "fresh results missing" in failures[0]

    def test_missing_metric_fails(self, gate, tmp_path):
        fresh_dir = self._copy_tree(gate, tmp_path)
        payload = json.loads(
            (fresh_dir / "BENCH_service.json").read_text()
        )
        del payload["cache_gap"]
        (fresh_dir / "BENCH_service.json").write_text(json.dumps(payload))
        failures, _ = gate.check_files(
            ["BENCH_service.json"],
            fresh_dir=fresh_dir,
            baseline_dir=gate.BASELINE_DIR,
        )
        assert any("missing from fresh" in failure for failure in failures)

    def test_unknown_file_fails(self, gate, tmp_path):
        failures, _ = gate.check_files(
            ["BENCH_wat.json"],
            fresh_dir=tmp_path,
            baseline_dir=gate.BASELINE_DIR,
        )
        assert failures and "no regression spec" in failures[0]

    def test_small_host_skips_cpu_gated_metric(self, gate):
        fresh = json.loads((REPO_ROOT / "BENCH_service.json").read_text())
        fresh["cpu_count"] = 1
        fresh["headline"]["parallel_speedup"] = 0.1  # Would fail if gated.
        baseline = json.loads(
            (gate.BASELINE_DIR / "BENCH_service.json").read_text()
        )
        failures, notes = gate.check_payloads(
            "BENCH_service.json", fresh, baseline
        )
        assert failures == []
        assert any("SKIP" in note for note in notes)

    def test_write_baselines_round_trip(self, gate, tmp_path):
        fresh_dir = self._copy_tree(gate, tmp_path)
        baseline_dir = tmp_path / "baselines"
        assert gate.main([
            "--fresh-dir", str(fresh_dir),
            "--baseline-dir", str(baseline_dir),
            "--write-baselines",
        ]) == 0
        assert gate.main([
            "--fresh-dir", str(fresh_dir),
            "--baseline-dir", str(baseline_dir),
        ]) == 0
