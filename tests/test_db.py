"""Tests for tables, probabilistic views, queries, storage and the engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.engine import Database
from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.db.queries import (
    expected_value_query,
    most_probable_range_query,
    range_probability_query,
    threshold_query,
)
from repro.db.storage import (
    load_table_csv,
    load_view_csv,
    save_table_csv,
    save_view_csv,
)
from repro.db.table import Table
from repro.exceptions import DataError, InvalidParameterError, QueryError


def _sample_view() -> ProbabilisticView:
    """Two times x three ranges, like a tiny prob_view from Fig. 1."""
    tuples = [
        ProbTuple(t=1, low=0.0, high=1.0, probability=0.5, label="room 1"),
        ProbTuple(t=1, low=1.0, high=2.0, probability=0.3, label="room 2"),
        ProbTuple(t=1, low=2.0, high=3.0, probability=0.2, label="room 3"),
        ProbTuple(t=2, low=0.0, high=1.0, probability=0.1, label="room 1"),
        ProbTuple(t=2, low=1.0, high=2.0, probability=0.6, label="room 2"),
        ProbTuple(t=2, low=2.0, high=3.0, probability=0.3, label="room 3"),
    ]
    return ProbabilisticView("prob_view", tuples)


class TestTable:
    def test_insert_mapping_and_sequence(self):
        table = Table("raw_values", ["t", "r"])
        table.insert({"t": 1.0, "r": 4.2})
        table.insert((2.0, 5.9))
        assert len(table) == 2
        np.testing.assert_array_equal(table.column("r"), [4.2, 5.9])

    def test_insert_missing_column_rejected(self):
        table = Table("x", ["a", "b"])
        with pytest.raises(DataError, match="missing"):
            table.insert({"a": 1.0})

    def test_insert_wrong_arity_rejected(self):
        table = Table("x", ["a", "b"])
        with pytest.raises(DataError):
            table.insert((1.0,))

    def test_insert_nan_rejected(self):
        table = Table("x", ["a"])
        with pytest.raises(DataError):
            table.insert({"a": float("nan")})

    def test_unknown_column_rejected(self):
        table = Table("x", ["a"])
        with pytest.raises(QueryError, match="no column"):
            table.column("b")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(InvalidParameterError):
            Table("x", ["a", "a"])

    def test_select_range(self):
        table = Table("x", ["t", "r"])
        table.insert_many([(float(i), float(i * 10)) for i in range(10)])
        subset = table.select(where_column="t", low=3.0, high=6.0)
        np.testing.assert_array_equal(subset.column("t"), [3.0, 4.0, 5.0, 6.0])

    def test_select_open_bounds(self):
        table = Table("x", ["t"])
        table.insert_many([(float(i),) for i in range(5)])
        assert len(table.select(where_column="t", low=3.0)) == 2
        assert len(table.select(where_column="t", high=1.0)) == 2
        assert len(table.select()) == 5

    def test_to_series_sorts_by_time(self):
        table = Table("x", ["t", "r"], data={
            "t": np.array([3.0, 1.0, 2.0]),
            "r": np.array([30.0, 10.0, 20.0]),
        })
        series = table.to_series("r", "t")
        np.testing.assert_array_equal(series.values, [10.0, 20.0, 30.0])

    def test_rows_iteration(self):
        table = Table("x", ["a", "b"])
        table.insert((1.0, 2.0))
        assert list(table.rows()) == [{"a": 1.0, "b": 2.0}]

    def test_initial_data_length_mismatch_rejected(self):
        with pytest.raises(DataError):
            Table("x", ["a", "b"], data={"a": np.zeros(2), "b": np.zeros(3)})


class TestProbabilisticView:
    def test_times_and_tuples_at(self):
        view = _sample_view()
        assert view.times == [1, 2]
        assert len(view.tuples_at(1)) == 3

    def test_missing_time_rejected(self):
        with pytest.raises(QueryError):
            _sample_view().tuples_at(99)

    def test_probability_at_value(self):
        view = _sample_view()
        assert view.probability_at(1, 0.5) == pytest.approx(0.5)
        assert view.probability_at(2, 1.5) == pytest.approx(0.6)
        assert view.probability_at(1, 10.0) == 0.0

    def test_total_mass(self):
        assert _sample_view().total_mass_at(1) == pytest.approx(1.0)

    def test_mass_above_one_rejected(self):
        tuples = [
            ProbTuple(t=1, low=0.0, high=1.0, probability=0.8),
            ProbTuple(t=1, low=1.0, high=2.0, probability=0.8),
        ]
        with pytest.raises(DataError, match="sum"):
            ProbabilisticView("bad", tuples)

    def test_tuple_validation(self):
        with pytest.raises(InvalidParameterError):
            ProbTuple(t=0, low=1.0, high=0.0, probability=0.5)
        with pytest.raises(InvalidParameterError):
            ProbTuple(t=0, low=0.0, high=1.0, probability=1.5)


class TestQueries:
    def test_threshold_query(self):
        hits = threshold_query(_sample_view(), 0.5)
        assert {(tup.t, tup.label) for tup in hits} == {
            (1, "room 1"), (2, "room 2"),
        }

    def test_threshold_validation(self):
        with pytest.raises(InvalidParameterError):
            threshold_query(_sample_view(), 1.5)

    def test_most_probable_range(self):
        modal = most_probable_range_query(_sample_view())
        assert modal[1].label == "room 1"
        assert modal[2].label == "room 2"

    def test_range_probability_full_overlap(self):
        out = range_probability_query(_sample_view(), 0.0, 3.0)
        assert out[1] == pytest.approx(1.0)

    def test_range_probability_partial_overlap(self):
        out = range_probability_query(_sample_view(), 0.5, 1.0)
        # Half of room 1's range at t=1: 0.5 * 0.5.
        assert out[1] == pytest.approx(0.25)

    def test_range_probability_validation(self):
        with pytest.raises(InvalidParameterError):
            range_probability_query(_sample_view(), 2.0, 1.0)

    def test_expected_value(self):
        out = expected_value_query(_sample_view())
        expected_t1 = 0.5 * 0.5 + 0.3 * 1.5 + 0.2 * 2.5
        assert out[1] == pytest.approx(expected_t1)


class TestStorage:
    def test_table_roundtrip(self, tmp_path):
        table = Table("raw", ["t", "r"])
        table.insert_many([(1.0, 2.5), (2.0, 3.25)])
        path = tmp_path / "raw.csv"
        save_table_csv(table, path)
        loaded = load_table_csv(path)
        assert loaded.columns == ("t", "r")
        np.testing.assert_array_equal(loaded.column("r"), [2.5, 3.25])

    def test_view_roundtrip(self, tmp_path):
        view = _sample_view()
        path = tmp_path / "view.csv"
        save_view_csv(view, path)
        loaded = load_view_csv(path)
        assert len(loaded) == len(view)
        assert loaded.tuples_at(1)[0].label == "room 1"

    def test_load_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nonsense,header\n1,2\n")
        with pytest.raises(DataError):
            load_view_csv(path)

    def test_load_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataError):
            load_table_csv(path)


class TestEngine:
    @pytest.fixture
    def db(self, campus_series):
        database = Database()
        table = Table("raw_values", ["t", "r"])
        table.insert_many(
            zip(campus_series.timestamps.tolist(), campus_series.values.tolist())
        )
        database.register_table(table)
        return database

    def test_end_to_end_view_creation(self, db):
        view = db.execute(
            "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 "
            "METRIC variable_threshold WINDOW 40 FROM raw_values"
        )
        assert view.name == "pv"
        assert len(view) > 0
        assert db.view("pv") is view
        assert all(0.0 <= tup.probability <= 1.0 for tup in view)

    def test_where_clause_limits_rows(self, db, campus_series):
        hi = float(campus_series.timestamps[200])
        view = db.execute(
            f"CREATE VIEW pv2 AS DENSITY r OVER t OMEGA delta=0.5, n=4 "
            f"METRIC variable_threshold WINDOW 50 FROM raw_values "
            f"WHERE t >= 0 AND t <= {hi}"
        )
        # 201 rows matched, window 50 -> 151 inference times x 4 ranges.
        assert len(view) == 151 * 4

    def test_cache_clause_used(self, db):
        view = db.execute(
            "CREATE VIEW pv3 AS DENSITY r OVER t OMEGA delta=0.5, n=6 "
            "METRIC variable_threshold WINDOW 40 CACHE (distance=0.01) "
            "FROM raw_values"
        )
        assert len(view) > 0

    def test_unknown_table_rejected(self, db):
        with pytest.raises(QueryError, match="unknown table"):
            db.execute(
                "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
                "FROM no_such_table"
            )

    def test_unknown_view_rejected(self, db):
        with pytest.raises(QueryError, match="unknown view"):
            db.view("nope")

    def test_too_narrow_where_rejected(self, db):
        with pytest.raises(QueryError, match="not enough"):
            db.execute(
                "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
                "WINDOW 100 FROM raw_values WHERE t >= 0 AND t <= 10"
            )

    def test_list_catalog(self, db):
        assert db.list_tables() == ["raw_values"]
        db.execute(
            "CREATE VIEW zz AS DENSITY r OVER t OMEGA delta=1, n=2 "
            "METRIC variable_threshold WINDOW 30 FROM raw_values"
        )
        assert "zz" in db.list_views()
