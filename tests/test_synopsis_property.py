"""Property-based guarantees for zone-map pruning and APPROX estimates.

Over randomly built catalogs (series count, ingest lengths, micro-batch
splits, segment layout — including a mid-life npz→v2 layout flip — and
randomly drawn statements):

* pruned exact execution is **bit-identical** to unpruned execution,
  compared on the canonical wire serialization (modulo the ``pruning``
  stats block, which legitimately differs);
* every ``SELECT APPROX`` interval contains the exact score, and the
  point estimate honours its own error bound;
* synopses survive a simulated crash between a segment write and its
  sidecar/metadata flush — the affected segment simply runs unpruned,
  and ``synopsize`` repairs it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError, QueryError

# A time_above window longer than the WHERE-restricted view raises
# InvalidParameterError inside the worker; the executor wraps every
# per-series failure as QueryError naming the series.  Either may
# surface depending on the layer — parity only requires both modes to
# fail identically.
_UNDEFINED = (InvalidParameterError, QueryError)
from repro.server.protocol import canonical_dumps, serialize_result
from repro.service import CatalogQueryService
from repro.store import Catalog
from repro.view.omega import OmegaGrid

H = 12
GRID = OmegaGrid(delta=0.5, n=4)

_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

_counter = iter(range(10**9))


@st.composite
def catalog_spec(draw):
    """Ingredients of a small random catalog."""
    return {
        "seed": draw(st.integers(min_value=0, max_value=2**16)),
        "series": draw(st.integers(min_value=1, max_value=3)),
        "length": draw(st.integers(min_value=36, max_value=72)),
        "chunks": draw(st.integers(min_value=2, max_value=4)),
        "layout": draw(st.sampled_from(["npz", "v2"])),
        "flip_layout": draw(st.booleans()),
    }


@st.composite
def statement_spec(draw):
    """One random SELECT body plus an optional WHERE range."""
    aggregate = draw(
        st.sampled_from(
            ["threshold", "expected_value", "exceedance", "time_above"]
        )
    )
    if aggregate == "threshold":
        body = f"threshold({draw(st.floats(0.05, 0.95)):.3f})"
    elif aggregate == "expected_value":
        body = "expected_value"
    elif aggregate == "exceedance":
        body = f"exceedance({draw(st.floats(18.0, 23.0)):.3f})"
    else:
        theta = draw(st.floats(18.0, 23.0))
        window = draw(st.integers(min_value=1, max_value=4))
        body = f"time_above({theta:.3f}, {window})"
    where = ""
    if draw(st.booleans()):
        lo = draw(st.integers(min_value=0, max_value=70))
        hi = lo + draw(st.integers(min_value=0, max_value=40))
        where = f" WHERE t BETWEEN {lo} AND {hi}"
    top = ""
    if draw(st.booleans()):
        top = f" TOP {draw(st.integers(min_value=1, max_value=3))}"
    return body, where, top


def _build(tmp_path, spec) -> Catalog:
    root = tmp_path / f"cat-{next(_counter)}"
    catalog = Catalog(root, segment_layout=spec["layout"])
    rng = np.random.default_rng(spec["seed"])
    for index in range(spec["series"]):
        series_id = f"s-{index}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=H, grid=GRID
        )
        values = 20.0 + 0.1 * index + np.cumsum(
            rng.normal(0.0, 0.1, size=spec["length"])
        )
        chunks = np.array_split(values, spec["chunks"])
        for position, chunk in enumerate(chunks):
            if spec["flip_layout"] and position == len(chunks) - 1:
                # Mid-life layout flip: later segments land in the other
                # layout, synopses must keep flowing regardless.
                other = "v2" if spec["layout"] == "npz" else "npz"
                meta_path = root / series_id / "series.json"
                meta = json.loads(meta_path.read_text())
                if meta.get("layout") != other:
                    meta["layout"] = other
                    meta_path.write_text(json.dumps(meta))
                    catalog = Catalog(root)
            catalog.append(series_id, chunk)
    return Catalog(root)


def _statement(catalog, parts) -> str:
    body, where, top = parts
    return (
        f"SELECT {body} FROM CATALOG '{catalog.root}'" + where + top
    )


def _canonical_sans_stats(result) -> str:
    payload = serialize_result(result)
    payload.pop("pruning", None)
    return canonical_dumps(payload)


class TestPrunedParity:
    @settings(max_examples=12, **_SETTINGS)
    @given(spec=catalog_spec(), parts=statement_spec())
    def test_pruned_bit_identical_to_unpruned(self, tmp_path, spec, parts):
        catalog = _build(tmp_path, spec)
        statement = _statement(catalog, parts)
        with CatalogQueryService(
            catalog, backend="sequential", pruning=True
        ) as pruned, CatalogQueryService(
            catalog, backend="sequential", pruning=False
        ) as full:
            try:
                b = full.execute(statement)
            except _UNDEFINED as exc:
                # time_above over a WHERE-restricted view shorter than
                # its window raises; pruning must not change that either
                # (dropped segments hold no times inside the window, so
                # the restricted view both modes aggregate is the same).
                with pytest.raises(type(exc)) as excinfo:
                    pruned.execute(statement)
                assert str(excinfo.value) == str(exc)
                return
            a = pruned.execute(statement)
        assert _canonical_sans_stats(a) == _canonical_sans_stats(b)
        assert a.stats is not None and b.stats is not None
        assert b.stats.segments_pruned == 0
        assert (
            a.stats.segments_scanned + a.stats.segments_pruned
            == a.stats.segments_total
            == b.stats.segments_total
        )


class TestApproxBounds:
    @settings(max_examples=12, **_SETTINGS)
    @given(spec=catalog_spec(), parts=statement_spec())
    def test_interval_contains_exact_score(self, tmp_path, spec, parts):
        catalog = _build(tmp_path, spec)
        body, where, _ = parts
        exact_statement = (
            f"SELECT {body} FROM CATALOG '{catalog.root}'" + where
        )
        approx_statement = (
            f"SELECT APPROX {body} FROM CATALOG '{catalog.root}'" + where
        )
        with CatalogQueryService(catalog, backend="sequential") as service:
            approx = service.execute(approx_statement)
            assert approx.approx
            try:
                exact = service.execute(exact_statement)
            except _UNDEFINED:
                # The exact query is undefined (time_above window longer
                # than the restricted view); APPROX still answers with a
                # well-formed interval — nothing to contain.
                for entry in approx.results:
                    payload = entry.result
                    assert (
                        payload["lower"]
                        <= payload["estimate"]
                        <= payload["upper"]
                    )
                return
        scores = exact.scores()
        assert set(scores) == {e.series_id for e in approx.results}
        for entry in approx.results:
            payload = entry.result
            score = scores[entry.series_id]
            assert (
                payload["lower"] <= payload["estimate"] <= payload["upper"]
            )
            assert payload["lower"] - 1e-9 <= score <= payload["upper"] + 1e-9
            assert abs(score - payload["estimate"]) <= (
                payload["error_bound"] + 1e-9
            )


class TestCrashRecovery:
    @settings(max_examples=8, **_SETTINGS)
    @given(spec=catalog_spec(), parts=statement_spec())
    def test_lost_synopsis_degrades_then_repairs(self, tmp_path, spec, parts):
        catalog = _build(tmp_path, spec)
        statement = _statement(catalog, parts)
        with CatalogQueryService(
            catalog, backend="sequential", pruning=False
        ) as full:
            try:
                reference = _canonical_sans_stats(full.execute(statement))
            except _UNDEFINED:
                reference = None  # Undefined exact query; repair still runs.
        # Simulate a crash after the last segment rename but before its
        # synopsis reached series.json (and sidecar, for npz): the
        # segment is valid, its synopsis is gone.
        victim_dir = catalog.root / "s-0"
        meta_path = victim_dir / "series.json"
        meta = json.loads(meta_path.read_text())
        last = meta["segments"][-1]
        meta.get("synopses", {}).pop(last, None)
        meta_path.write_text(json.dumps(meta))
        sidecar = victim_dir / f"{last}.synopsis.json"
        if sidecar.exists():
            sidecar.unlink()
        damaged = Catalog(catalog.root)
        synopses = damaged.snapshot("s-0").segment_synopses()
        assert synopses[-1] is None
        if reference is not None:
            with CatalogQueryService(
                damaged, backend="sequential", pruning=True
            ) as pruned:
                assert _canonical_sans_stats(
                    pruned.execute(statement)
                ) == reference
        # synopsize() recomputes exactly what the writer would have
        # stored, so pruning is fully re-armed afterwards.
        written = damaged.synopsize()
        assert written["s-0"] == 1
        repaired = Catalog(catalog.root).snapshot("s-0").segment_synopses()
        assert all(s is not None for s in repaired)
