"""Tests for the asyncio query server (`repro.server`).

The protocol promises that every failure mode — malformed frames,
oversized statements, engine errors, saturation, shutdown — produces a
*structured* error response, never a dropped connection with a server-side
traceback.  These tests drive a real server over real sockets (the
:class:`ServerThread` embedding) and additionally pin the serialisation:
a statement served over the wire must be bit-identical to the same
statement run through ``Database.execute`` directly.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.db.engine import Database
from repro.db.table import Table
from repro.server import (
    Client,
    QueryServer,
    ServerConnectionError,
    ServerError,
    ServerThread,
    canonical_dumps,
    serialize_result,
)
from repro.store import Catalog
from repro.view.omega import OmegaGrid

H = 16
GRID = OmegaGrid(delta=0.5, n=4)
SERIES = ("room-0", "room-1", "plant-0")


def _build_catalog(root) -> Catalog:
    catalog = Catalog(root)
    rng = np.random.default_rng(7)
    for offset, series_id in enumerate(SERIES):
        catalog.create_series(
            series_id, metric="variable_threshold", H=H, grid=GRID
        )
        values = 20.0 + 0.2 * offset + np.cumsum(
            rng.normal(0.0, 0.05, size=48)
        )
        catalog.append(series_id, values)
    return catalog


@pytest.fixture(scope="module")
def catalog_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("server-catalog") / "cat"
    _build_catalog(root)
    return root


@pytest.fixture(scope="module")
def running_server(catalog_root):
    server = QueryServer(catalog_root, port=0, max_inflight=4)
    with ServerThread(server) as (host, port):
        yield server, host, port


@pytest.fixture
def client(running_server):
    _, host, port = running_server
    with Client(host, port) as client:
        yield client


def _select(root, aggregate="exceedance(20.5)", suffix="") -> str:
    return f"SELECT {aggregate} FROM CATALOG '{root}'{suffix}"


class _GatedServer(QueryServer):
    """A server whose statement execution blocks until a gate opens.

    Makes concurrency scenarios (saturation, coalescing, draining,
    mid-response disconnects) deterministic instead of timing-dependent.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.entered = threading.Event()

    def _execute(self, statement, want_trace=False):
        self.entered.set()
        if not self.gate.wait(timeout=15):
            raise RuntimeError("test gate never opened")
        return super()._execute(statement, want_trace)


class TestQueryRoundtrip:
    def test_ping_and_stats(self, client):
        assert client.ping()
        stats = client.stats()
        # Client.stats() strips the protocol framing discriminator.
        assert "kind" not in stats
        assert stats["connections"] >= 1
        assert "cache" in stats

    def test_select_over_wire(self, catalog_root, client):
        result = client.query(_select(catalog_root, suffix=" TOP 2"))
        assert result["kind"] == "select"
        assert result["aggregate"] == "exceedance"
        assert len(result["results"]) == 2
        assert sorted(result["matched"]) == sorted(SERIES)

    def test_wire_result_bit_identical_to_engine(
        self, catalog_root, client
    ):
        statements = [
            _select(catalog_root),
            _select(catalog_root, aggregate="threshold(0.2)"),
            _select(catalog_root, aggregate="expected_value",
                    suffix=" SERIES 'room-*'"),
            _select(catalog_root, aggregate="time_above(20.5, 4)",
                    suffix=" TOP 1"),
        ]
        for statement in statements:
            direct = canonical_dumps(
                serialize_result(Database().execute(statement))
            )
            served = canonical_dumps(client.query(statement))
            assert served == direct

    def test_create_view_over_wire(self, catalog_root):
        table = Table("raw_values", ["t", "r"])
        rng = np.random.default_rng(3)
        table.insert_many(
            (float(i), 20.0 + 0.01 * i + rng.normal(0.0, 0.05))
            for i in range(80)
        )
        database = Database()
        database.register_table(table)
        server = QueryServer(catalog_root, port=0, database=database)
        statement = (
            "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=4 "
            "METRIC variable_threshold WINDOW 20 FROM raw_values"
        )
        with ServerThread(server) as (host, port):
            with Client(host, port) as client:
                result = client.query(statement)
        assert result["kind"] == "view"
        assert result["name"] == "pv"
        assert len(result["tuples"]) == 60 * GRID.n

    def test_sequential_requests_reuse_connection(
        self, catalog_root, client
    ):
        first = client.query(_select(catalog_root))
        second = client.query(_select(catalog_root))
        assert first == second


class TestErrorPaths:
    def test_malformed_json_frame(self, running_server):
        _, host, port = running_server
        with socket.create_connection((host, port), timeout=5) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"this is not json\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "bad_request"
            # The connection survives: the next frame still answers.
            stream.write(b'{"op": "ping"}\n')
            stream.flush()
            assert json.loads(stream.readline())["ok"] is True

    def test_non_finite_json_constants_rejected(self, running_server):
        # json.loads accepts NaN/Infinity, but they can never be echoed
        # canonically — the frame must fail as a structured bad_request,
        # not crash response encoding and drop the connection.
        _, host, port = running_server
        with socket.create_connection((host, port), timeout=5) as sock:
            stream = sock.makefile("rwb")
            for frame in (
                b'{"id": NaN, "op": "ping"}\n',
                b'{"id": Infinity, "op": "ping"}\n',
            ):
                stream.write(frame)
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "bad_request"
            # An id that parses to inf without a constant token is
            # dropped rather than fatal; the op still answers.
            stream.write(b'{"id": 1e999, "op": "ping"}\n')
            stream.flush()
            response = json.loads(stream.readline())
            assert response["ok"] is True
            assert response["id"] is None
            stream.write(b'{"op": "ping"}\n')
            stream.flush()
            assert json.loads(stream.readline())["ok"] is True

    def test_non_object_frame(self, running_server):
        _, host, port = running_server
        with socket.create_connection((host, port), timeout=5) as sock:
            stream = sock.makefile("rwb")
            stream.write(b"[1, 2, 3]\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["error"]["type"] == "bad_request"

    def test_missing_statement(self, client):
        response = client.request({"id": 9, "op": "query"})
        assert response["id"] == 9
        assert response["ok"] is False
        assert response["error"]["type"] == "bad_request"

    def test_unknown_op(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._roundtrip({"op": "teleport"})
        assert excinfo.value.type == "bad_request"

    def test_oversized_statement(self, catalog_root):
        server = QueryServer(
            catalog_root, port=0, max_statement_chars=200
        )
        with ServerThread(server) as (host, port):
            with Client(host, port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.query("SELECT " + "x" * 500)
                assert excinfo.value.type == "statement_too_large"
                assert client.ping()  # Connection stays usable.

    def test_frame_too_large_closes_connection(self, catalog_root):
        server = QueryServer(catalog_root, port=0, frame_limit_bytes=1024)
        with ServerThread(server) as (host, port):
            with socket.create_connection((host, port), timeout=5) as sock:
                stream = sock.makefile("rwb")
                stream.write(b'{"statement": "' + b"y" * 4096 + b'"}\n')
                stream.flush()
                response = json.loads(stream.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "frame_too_large"
                assert stream.readline() == b""  # Server hangs up.

    def test_query_against_missing_catalog(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.query(
                "SELECT exceedance(1.0) FROM CATALOG '/no/such/catalog'"
            )
        assert excinfo.value.type == "store_error"
        assert "no catalog" in excinfo.value.message

    def test_unknown_series_is_structured(self, catalog_root, client):
        with pytest.raises(ServerError) as excinfo:
            client.query(_select(catalog_root, suffix=" SERIES 'zzz-*'"))
        assert excinfo.value.type == "query_error"

    def test_bad_statement_is_structured(self, catalog_root, client):
        with pytest.raises(ServerError) as excinfo:
            client.query("SELEKT wat")
        assert excinfo.value.type in ("parse_error", "query_error")

    def test_engine_errors_do_not_kill_the_server(
        self, catalog_root, client
    ):
        for _ in range(3):
            with pytest.raises(ServerError):
                client.query("SELECT nope(1) FROM CATALOG 'x'")
        assert client.ping()


class TestAdmissionAndCoalescing:
    def test_saturation_rejects_fast(self, catalog_root):
        server = _GatedServer(catalog_root, port=0, max_inflight=1)
        statement = _select(catalog_root)
        other = _select(catalog_root, aggregate="expected_value")
        outcome: dict = {}

        def blocked_query():
            with Client(*address) as blocked:
                outcome["result"] = blocked.query(statement)

        with ServerThread(server) as address:
            worker = threading.Thread(target=blocked_query)
            worker.start()
            assert server.entered.wait(timeout=10)
            with Client(*address) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.query(other)
                assert excinfo.value.type == "saturated"
                assert excinfo.value.retryable
            server.gate.set()
            worker.join(timeout=10)
        assert outcome["result"]["kind"] == "select"
        assert server.stats.rejected == 1

    def test_identical_statements_coalesce(self, catalog_root):
        server = _GatedServer(catalog_root, port=0, max_inflight=1)
        statement = _select(catalog_root)
        results: list = []

        def issue():
            with Client(*address) as client:
                results.append(client.query(statement))

        with ServerThread(server) as address:
            first = threading.Thread(target=issue)
            first.start()
            assert server.entered.wait(timeout=10)
            second = threading.Thread(target=issue)
            second.start()
            # Deterministic: wait until the second request has attached
            # to the in-flight execution before opening the gate.
            with Client(*address) as observer:
                deadline = time.monotonic() + 10
                while observer.stats()["coalesced"] < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
            server.gate.set()
            first.join(timeout=10)
            second.join(timeout=10)
        assert len(results) == 2
        assert results[0] == results[1]
        assert server.stats.executed == 1
        assert server.stats.coalesced == 1
        assert server.stats.rejected == 0

    def test_whitespace_inside_quotes_never_coalesces(self, catalog_root):
        # 'room-*' vs 'room- *' differ only by whitespace *inside* a
        # quoted glob: they are different statements and must never share
        # an execution (the second would silently get the first's rows).
        server = _GatedServer(catalog_root, port=0, max_inflight=2)
        base = f"SELECT exceedance(20.5) FROM CATALOG '{catalog_root}'"
        outcomes: list = []

        def issue(statement):
            with Client(*address) as client:
                try:
                    outcomes.append(client.query(statement))
                except ServerError as exc:
                    outcomes.append(exc)

        with ServerThread(server) as address:
            first = threading.Thread(
                target=issue, args=(base + " SERIES 'room-*'",)
            )
            first.start()
            assert server.entered.wait(timeout=10)
            second = threading.Thread(
                target=issue, args=(base + " SERIES 'room- *'",)
            )
            second.start()
            with Client(*address) as observer:
                deadline = time.monotonic() + 10
                while observer.stats()["executed"] < 2:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
            server.gate.set()
            first.join(timeout=10)
            second.join(timeout=10)
        assert server.stats.executed == 2
        assert server.stats.coalesced == 0
        # One real result, one structured no-match error — never two
        # copies of the same rows.
        kinds = sorted(type(outcome).__name__ for outcome in outcomes)
        assert kinds == ["ServerError", "dict"]

    def test_coalescing_can_be_disabled(self, catalog_root):
        server = QueryServer(catalog_root, port=0, coalesce=False)
        statement = _select(catalog_root)
        with ServerThread(server) as (host, port):
            with Client(host, port) as client:
                client.query(statement)
                client.query(statement)
        assert server.stats.executed == 2
        assert server.stats.coalesced == 0


class TestShutdown:
    def test_shutdown_drains_inflight_work(self, catalog_root):
        server = _GatedServer(catalog_root, port=0)
        statement = _select(catalog_root)
        outcome: dict = {}
        handle = ServerThread(server)
        address = handle.start()

        def blocked_query():
            with Client(*address) as client:
                outcome["result"] = client.query(statement)

        worker = threading.Thread(target=blocked_query)
        worker.start()
        assert server.entered.wait(timeout=10)
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        time.sleep(0.05)  # Let the drain begin before opening the gate.
        server.gate.set()
        worker.join(timeout=10)
        stopper.join(timeout=10)
        # The in-flight query's full response was written before close.
        assert outcome["result"]["kind"] == "select"

    def test_client_disconnect_mid_response(self, catalog_root):
        server = _GatedServer(catalog_root, port=0)
        statement = _select(catalog_root)
        with ServerThread(server) as (host, port):
            sock = socket.create_connection((host, port), timeout=5)
            sock.sendall(
                json.dumps({"id": 1, "statement": statement}).encode()
                + b"\n"
            )
            assert server.entered.wait(timeout=10)
            sock.close()  # Vanish while the statement is executing.
            server.gate.set()
            # The server must absorb the failed write and keep serving.
            with Client(host, port) as client:
                assert client.ping()
                assert client.query(statement)["kind"] == "select"

    def test_connecting_after_stop_fails(self, catalog_root):
        server = QueryServer(catalog_root, port=0)
        handle = ServerThread(server)
        host, port = handle.start()
        handle.stop()
        with pytest.raises(ServerConnectionError):
            Client(host, port, timeout=2)
