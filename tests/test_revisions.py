"""Time-of-knowledge revisions, AS OF replay, and the connect() façade.

The bitemporal contract under test: a revision overlays new rows over an
already-covered valid-time range without touching the old segments, and
``AS OF <knowledge_time>`` replays the catalog exactly as it was known
then — bit-identically (canonical JSON) to a fresh catalog built only
from the segments known at that time, on every backend and every route.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cli import main
from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.exceptions import InvalidParameterError, ParseError, QueryError
from repro.server.app import QueryServer, ServerThread
from repro.service import CatalogQueryService
from repro.store import Catalog
from repro.view.sql import (
    parse_statement,
    render_statement,
    with_as_of,
)


def _view(series_id: str, times, low=20.0, p=0.9, label="ok"):
    return ProbabilisticView(series_id, [
        ProbTuple(t, low + 0.1 * t, low + 0.1 * t + 1.0, p, label)
        for t in times
    ])


def _build_base(root) -> Catalog:
    catalog = Catalog(root)
    catalog.save_view("alpha", _view("alpha", range(10)))
    catalog.save_view("beta", _view("beta", range(10), low=24.0))
    return catalog


@pytest.fixture()
def revised(tmp_path) -> Catalog:
    """Base catalog plus two revisions on ``alpha`` (k=1 then k=2)."""
    catalog = _build_base(tmp_path / "cat")
    catalog.revise(
        "alpha", _view("alpha", range(3, 6), low=30.0, label="rev1"),
        knowledge_time=1,
    )
    catalog.revise(
        "alpha", _view("alpha", range(5, 8), low=35.0, label="rev2"),
        knowledge_time=2,
    )
    return catalog


def _sql(catalog, body="exceedance(21.0)", suffix=""):
    return f"SELECT {body} FROM CATALOG '{catalog.root}'{suffix}"


def _answer_json(result) -> str:
    """Canonical JSON of the answer alone (pruning counters stripped)."""
    from repro.util.jsonio import canonical_dumps

    payload = result.to_dict()
    payload.pop("pruning", None)
    return canonical_dumps(payload)


class TestStoreRevisions:
    def test_revision_chain_recorded_and_reloaded(self, revised):
        snapshot = Catalog(revised.root).snapshot("alpha")
        assert snapshot.has_revisions
        assert snapshot.knowledge_times() == (0, 1, 2)
        assert [r["knowledge_time"] for r in snapshot.revisions] == [1, 2]

    def test_latest_wins_per_time_instant(self, revised):
        view = revised.snapshot("alpha").load_view()
        by_t = {}
        cols = view.columns
        for t, low, label in zip(
            cols.t.tolist(), cols.low.tolist(),
            (cols.labels[c] for c in cols.label_code.tolist()),
        ):
            by_t.setdefault(int(t), []).append((low, label))
        # t in [0,3): base; [3,5): rev1; [5,8): rev2; [8,10): base.
        assert all(lbl == "ok" for _, lbl in by_t[0] + by_t[8])
        assert all(lbl == "rev1" for _, lbl in by_t[3] + by_t[4])
        assert all(lbl == "rev2" for _, lbl in by_t[5] + by_t[7])

    def test_as_of_replays_what_was_known(self, revised, tmp_path):
        # AS OF 0 == a fresh catalog built from the base segments alone.
        base_only = _build_base(tmp_path / "base_only")
        replayed = revised.snapshot("alpha").load_view(as_of=0)
        fresh = base_only.snapshot("alpha").load_view()
        np.testing.assert_array_equal(
            replayed.columns.low, fresh.columns.low
        )
        np.testing.assert_array_equal(replayed.columns.t, fresh.columns.t)

    def test_as_of_latest_is_default(self, revised):
        snapshot = revised.snapshot("alpha")
        default = snapshot.load_view()
        pinned = snapshot.load_view(as_of=2)
        future = snapshot.load_view(as_of=99)
        for other in (pinned, future):
            np.testing.assert_array_equal(
                default.columns.low, other.columns.low
            )

    def test_unrevised_series_fast_path_token(self, revised):
        snapshot = revised.snapshot("beta")
        assert not snapshot.has_revisions
        frontier = snapshot.as_of(None)
        assert frontier.token == ()
        assert frontier.segments == snapshot.segments
        assert not any(frontier.shadows)

    def test_intermediate_as_of_points_share_one_frontier(self, revised):
        snapshot = revised.snapshot("alpha")
        assert snapshot.as_of(1).token == ("k", 1)
        # Every AS OF between two revisions resolves the same frontier.
        assert snapshot.as_of(1).token == snapshot.as_of(1).token

    def test_knowledge_time_must_not_decrease(self, revised):
        with pytest.raises(InvalidParameterError):
            revised.revise(
                "alpha", _view("alpha", [0]), knowledge_time=1
            )
        with pytest.raises(InvalidParameterError):
            revised.revise(
                "alpha", _view("alpha", [0]), knowledge_time=0
            )

    def test_auto_knowledge_time_is_monotonic(self, tmp_path):
        catalog = _build_base(tmp_path / "cat")
        first = catalog.revise("alpha", _view("alpha", [1]))
        second = catalog.revise("alpha", _view("alpha", [2]))
        assert second["knowledge_time"] > first["knowledge_time"] >= 1

    def test_empty_revision_rejected(self, revised):
        with pytest.raises(InvalidParameterError):
            revised.revise("alpha", ProbabilisticView("alpha", []))

    def test_replay_iterates_knowledge_timeline(self, revised):
        steps = revised.replay("alpha")
        assert [k for k, _ in steps] == [0, 1, 2]
        # Each step equals querying AS OF that knowledge time.
        snapshot = revised.snapshot("alpha")
        for k, view in steps:
            np.testing.assert_array_equal(
                view.columns.low,
                snapshot.load_view(as_of=k).columns.low,
            )

    def test_replay_subset_of_knowledge_times(self, revised):
        steps = revised.replay("alpha", knowledge_times=[0, 2])
        assert [k for k, _ in steps] == [0, 2]


class TestAsOfGrammar:
    def test_select_parses_as_of(self):
        query = parse_statement(
            "SELECT exceedance(21.0) FROM CATALOG '/c' AS OF 3 TOP 2"
        )
        assert query.as_of == 3

    def test_simulate_parses_as_of(self):
        query = parse_statement(
            "SIMULATE 4 SEED 7 FROM CATALOG '/c' AS OF 1"
        )
        assert query.as_of == 1

    def test_default_is_none(self):
        assert parse_statement(
            "SELECT expected_value FROM CATALOG '/c'"
        ).as_of is None

    def test_negative_as_of_rejected(self):
        with pytest.raises(ParseError):
            parse_statement(
                "SELECT expected_value FROM CATALOG '/c' AS OF -1"
            )

    def test_render_round_trips(self):
        for text in (
            "SELECT APPROX exceedance(21.0) FROM CATALOG '/c' AS OF 2",
            "SELECT expected_value FROM CATALOG '/c' SERIES 'a*' "
            "WHERE t BETWEEN 1 AND 5 AS OF 0 TOP 3",
            "SIMULATE 8 SEED 42 FROM CATALOG '/c' AS OF 7",
        ):
            rendered = render_statement(parse_statement(text))
            reparsed = parse_statement(rendered)
            assert parse_statement(text) == reparsed

    def test_with_as_of_injects(self):
        statement = with_as_of(
            "SELECT expected_value FROM CATALOG '/c' TOP 2", 5
        )
        assert parse_statement(statement).as_of == 5
        assert parse_statement(statement).top_k == 2

    def test_with_as_of_keeps_matching_pin(self):
        pinned = "SELECT expected_value FROM CATALOG '/c' AS OF 5"
        assert parse_statement(with_as_of(pinned, 5)).as_of == 5

    def test_with_as_of_rejects_conflicting_pin(self):
        with pytest.raises(QueryError):
            with_as_of(
                "SELECT expected_value FROM CATALOG '/c' AS OF 5", 6
            )

    def test_with_as_of_rejects_create_view(self):
        with pytest.raises(QueryError):
            with_as_of(
                "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
                "FROM raw", 1
            )


class TestAsOfExecution:
    @pytest.mark.parametrize("backend", ["sequential", "thread"])
    def test_as_of_zero_matches_base_only_catalog(
        self, revised, tmp_path, backend
    ):
        base_only = _build_base(tmp_path / "base_only")
        service = CatalogQueryService(revised, backend=backend)
        fresh = CatalogQueryService(base_only, backend=backend)
        got = service.execute(_sql(revised, suffix=" AS OF 0"))
        want = fresh.execute(_sql(base_only))
        # The answers must be bit-identical; the pruning counters are
        # observability and legitimately differ (the revised catalog
        # holds more physical segments, all shadowed at AS OF 0).
        assert _answer_json(got) == _answer_json(want)

    def test_as_of_latest_bit_identical_to_default(self, revised):
        service = CatalogQueryService(revised)
        assert service.execute(
            _sql(revised, suffix=" AS OF 2")
        ).json() == service.execute(_sql(revised)).json()

    def test_pruning_off_same_answers(self, revised):
        pruned = CatalogQueryService(revised, pruning=True)
        unpruned = CatalogQueryService(revised, pruning=False)
        for suffix in ("", " AS OF 0", " AS OF 1"):
            assert pruned.execute(
                _sql(revised, suffix=suffix)
            ).json() == unpruned.execute(
                _sql(revised, suffix=suffix)
            ).json()

    def test_as_of_points_differ_when_knowledge_changed(self, revised):
        service = CatalogQueryService(revised)
        payloads = {
            k: service.execute(
                _sql(revised, "expected_value", f" AS OF {k}")
            ).json()
            for k in (0, 1, 2)
        }
        assert len(set(payloads.values())) == 3

    def test_approx_bounds_contain_exact_at_every_as_of(self, revised):
        service = CatalogQueryService(revised)
        for k in (0, 1, 2):
            exact = service.execute(
                _sql(revised, suffix=f" AS OF {k}")
            )
            approx = service.execute(
                _sql(revised, "APPROX exceedance(21.0)", f" AS OF {k}")
            )
            scores = {e.series_id: e.score for e in exact.results}
            for entry in approx.results:
                est = entry.result
                assert est["lower"] <= scores[entry.series_id] <= est["upper"]

    def test_stats_count_shadowed_segments_as_pruned(self, revised):
        service = CatalogQueryService(revised)
        stats = service.execute(_sql(revised, suffix=" AS OF 0")).stats
        assert (
            stats.segments_scanned + stats.segments_pruned
            == stats.segments_total
        )
        # alpha's two revision segments are invisible at AS OF 0.
        assert stats.segments_pruned >= 2

    def test_simulate_as_of_replays_and_stays_seeded(self, revised):
        service = CatalogQueryService(revised)
        sim = f"SIMULATE 3 SEED 11 FROM CATALOG '{revised.root}'"
        assert service.execute(sim + " AS OF 2").json() \
            == service.execute(sim).json()
        assert service.execute(sim + " AS OF 0").json() \
            != service.execute(sim).json()

    def test_matrix_cache_keyed_on_frontier(self, revised):
        service = CatalogQueryService(revised)
        default = service.execute(_sql(revised)).json()
        pinned = service.execute(_sql(revised, suffix=" AS OF 0")).json()
        # Re-running default after the pinned query must not read the
        # pinned frontier's cached matrices.
        assert service.execute(_sql(revised)).json() == default
        assert service.execute(
            _sql(revised, suffix=" AS OF 0")
        ).json() == pinned


class TestConnect:
    def test_routes(self, tmp_path):
        with repro.connect() as conn:
            assert conn.route == "memory"
        catalog = _build_base(tmp_path / "cat")
        with repro.connect(str(catalog.root)) as conn:
            assert conn.route == "service"

    def test_rejects_unknown_scheme(self):
        with pytest.raises(InvalidParameterError):
            repro.connect("http://somewhere")

    def test_three_routes_bit_identical(self, revised):
        statement = _sql(revised, suffix=" TOP 2")
        simulate = f"SIMULATE 2 SEED 3 FROM CATALOG '{revised.root}'"
        server = ServerThread(
            QueryServer(str(revised.root), port=0)
        )
        host, port = server.start()
        try:
            routes = [
                repro.connect(),
                repro.connect(str(revised.root)),
                repro.connect(f"tcp://{host}:{port}"),
            ]
            try:
                for text in (statement, simulate):
                    for as_of in (None, 0, 2):
                        payloads = {
                            conn.execute(text, as_of=as_of).json()
                            for conn in routes
                        }
                        assert len(payloads) == 1, (text, as_of)
            finally:
                for conn in routes:
                    conn.close()
        finally:
            server.stop()

    def test_uniform_result_protocol(self, revised):
        with repro.connect(str(revised.root)) as conn:
            select = conn.execute(_sql(revised))
            assert select.kind == "select"
            assert select.to_dict()["kind"] == "select"
            approx = conn.execute(
                _sql(revised, "APPROX expected_value")
            )
            assert approx.kind == "approx"
            assert approx.to_dict()["approx"] is True
            sim = conn.execute(
                f"SIMULATE 2 SEED 1 FROM CATALOG '{revised.root}'"
            )
            assert sim.kind == "simulate"
            multi = conn.execute(
                _sql(revised, "expected_value, exceedance(21.0)")
            )
            assert multi.kind == "multi_select"
            kinds = [
                item["kind"] for item in multi.to_dict()["statements"]
            ]
            assert kinds == ["select", "select"]

    def test_remote_trace_excluded_from_payload(self, revised):
        server = ServerThread(QueryServer(str(revised.root), port=0))
        host, port = server.start()
        try:
            with repro.connect(f"tcp://{host}:{port}") as conn:
                traced = conn.execute(_sql(revised), trace=True)
                plain = conn.execute(_sql(revised))
                assert traced.trace is not None
                assert plain.trace is None
                assert traced.json() == plain.json()
        finally:
            server.stop()

    def test_memory_route_wraps_views(self):
        from repro.db.table import Table

        with repro.connect(":memory:") as conn:
            conn.database.register_table(Table(
                "raw", ["t", "r"],
                {"t": list(range(80)),
                 "r": [10.0 + (i % 7) for i in range(80)]},
            ))
            result = conn.execute(
                "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 "
                "WINDOW 40 FROM raw"
            )
            assert result.kind == "view"
            assert result.to_dict()["name"] == "v"
            assert result.json().startswith('{"kind":"view"')

    def test_as_of_conflict_surfaces(self, revised):
        with repro.connect(str(revised.root)) as conn:
            with pytest.raises(QueryError):
                conn.execute(_sql(revised, suffix=" AS OF 1"), as_of=2)


class TestCliAsOf:
    def test_service_and_server_render_identically(
        self, revised, capsys
    ):
        server = ServerThread(QueryServer(str(revised.root), port=0))
        host, port = server.start()
        try:
            statement = _sql(revised, suffix=" TOP 2")
            assert main([
                "service", "query", statement,
                "--as-of", "0", "--stats",
            ]) == 0
            via_service = capsys.readouterr().out
            assert main([
                "server", "query", statement,
                "--host", host, "--port", str(port),
                "--as-of", "0", "--stats",
            ]) == 0
            via_server = capsys.readouterr().out
            assert via_service == via_server
            assert "pruning: scanned" in via_service
        finally:
            server.stop()

    def test_server_query_backend_flag_is_noticed(self, revised, capsys):
        server = ServerThread(QueryServer(str(revised.root), port=0))
        host, port = server.start()
        try:
            assert main([
                "server", "query", _sql(revised),
                "--host", host, "--port", str(port),
                "--backend", "process",
            ]) == 0
            captured = capsys.readouterr()
            assert "--backend is fixed by the serving process" \
                in captured.err
        finally:
            server.stop()

    def test_as_of_zero_changes_cli_answer(self, revised, capsys):
        statement = _sql(revised, "expected_value")
        assert main(["service", "query", statement]) == 0
        default_out = capsys.readouterr().out
        assert main([
            "service", "query", statement, "--as-of", "0",
        ]) == 0
        pinned_out = capsys.readouterr().out
        assert default_out != pinned_out
