"""Property-based tests for the SQL layer: render -> parse round trips.

Rather than fuzzing raw strings (almost all of which are trivially
rejected), we generate random *valid* queries as structured values, render
them to SQL text, parse that text, and require the parsed query to match
the source structure exactly.  This exercises every clause combination the
grammar supports.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParseError
from repro.view.sql import parse_view_query

_IDENT = st.from_regex(r"[a-zA-Z][a-zA-Z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.lower() not in {
        "create", "view", "as", "density", "over", "omega", "metric",
        "window", "cache", "from", "where", "and", "between", "true", "false",
    }
)

_METRIC_PARAM_VALUE = st.one_of(
    st.integers(min_value=0, max_value=99),
    st.floats(min_value=0.01, max_value=99.0, allow_nan=False,
              allow_infinity=False).map(lambda f: round(f, 4)),
    st.booleans(),
)


@st.composite
def _query_structures(draw):
    view_name = draw(_IDENT)
    value_column = draw(_IDENT)
    time_column = draw(_IDENT.filter(lambda s: s != value_column))
    table_name = draw(_IDENT)
    delta = round(draw(st.floats(min_value=0.01, max_value=100.0)), 4)
    n = draw(st.integers(min_value=1, max_value=200)) * 2
    metric = draw(st.sampled_from([None, "arma_garch", "vt", "cgarch", "ewma"]))
    params = {}
    if metric is not None and draw(st.booleans()):
        keys = draw(st.lists(_IDENT, min_size=1, max_size=3, unique=True))
        for key in keys:
            params[key] = draw(_METRIC_PARAM_VALUE)
    window = draw(st.one_of(st.none(), st.integers(min_value=4, max_value=500)))
    cache = draw(st.sampled_from(["none", "distance", "memory", "both"]))
    where = draw(st.sampled_from(["none", "range", "between", "lower", "upper"]))
    lo = round(draw(st.floats(min_value=0.0, max_value=1e5)), 3)
    hi = round(lo + draw(st.floats(min_value=0.001, max_value=1e5)), 3)
    return {
        "view_name": view_name, "value_column": value_column,
        "time_column": time_column, "table_name": table_name,
        "delta": delta, "n": n, "metric": metric, "params": params,
        "window": window, "cache": cache, "where": where, "lo": lo, "hi": hi,
    }


def _render(q: dict) -> str:
    parts = [
        f"CREATE VIEW {q['view_name']} AS DENSITY {q['value_column']} "
        f"OVER {q['time_column']} OMEGA delta={q['delta']}, n={q['n']}"
    ]
    if q["metric"] is not None:
        clause = f"METRIC {q['metric']}"
        if q["params"]:
            rendered = ", ".join(
                f"{k}={str(v).lower() if isinstance(v, bool) else v}"
                for k, v in q["params"].items()
            )
            clause += f" ({rendered})"
        parts.append(clause)
    if q["window"] is not None:
        parts.append(f"WINDOW {q['window']}")
    if q["cache"] == "distance":
        parts.append("CACHE (distance=0.01)")
    elif q["cache"] == "memory":
        parts.append("CACHE (memory=32)")
    elif q["cache"] == "both":
        parts.append("CACHE (distance=0.05, memory=64)")
    parts.append(f"FROM {q['table_name']}")
    t = q["time_column"]
    if q["where"] == "range":
        parts.append(f"WHERE {t} >= {q['lo']} AND {t} <= {q['hi']}")
    elif q["where"] == "between":
        parts.append(f"WHERE {t} BETWEEN {q['lo']} AND {q['hi']}")
    elif q["where"] == "lower":
        parts.append(f"WHERE {t} >= {q['lo']}")
    elif q["where"] == "upper":
        parts.append(f"WHERE {t} <= {q['hi']}")
    return " ".join(parts)


@settings(max_examples=120, deadline=None)
@given(_query_structures())
def test_render_parse_roundtrip(q):
    """Any structurally valid query survives render -> parse unchanged."""
    parsed = parse_view_query(_render(q))
    assert parsed.view_name == q["view_name"]
    assert parsed.value_column == q["value_column"]
    assert parsed.time_column == q["time_column"]
    assert parsed.table_name == q["table_name"]
    assert parsed.delta == pytest.approx(q["delta"])
    assert parsed.n == q["n"]
    if q["metric"] is not None:
        assert parsed.metric_name == q["metric"]
        for key, value in q["params"].items():
            if isinstance(value, bool):
                assert parsed.metric_params[key] is value
            else:
                assert parsed.metric_params[key] == pytest.approx(value)
    assert parsed.window == q["window"]
    if q["cache"] == "none":
        assert not parsed.uses_cache
    elif q["cache"] == "distance":
        assert parsed.cache_distance == 0.01 and parsed.cache_memory is None
    elif q["cache"] == "memory":
        assert parsed.cache_memory == 32 and parsed.cache_distance is None
    else:
        assert parsed.cache_distance == 0.05 and parsed.cache_memory == 64
    if q["where"] in ("range", "between"):
        assert parsed.time_lo == pytest.approx(q["lo"])
        assert parsed.time_hi == pytest.approx(q["hi"])
    elif q["where"] == "lower":
        assert parsed.time_lo == pytest.approx(q["lo"])
        assert parsed.time_hi is None
    elif q["where"] == "upper":
        assert parsed.time_hi == pytest.approx(q["hi"])
        assert parsed.time_lo is None


@settings(max_examples=80, deadline=None)
@given(st.text(min_size=1, max_size=60))
def test_arbitrary_text_never_crashes_the_parser(text):
    """Garbage input raises ParseError (or parses), never anything else."""
    try:
        parse_view_query(text)
    except ParseError:
        pass
