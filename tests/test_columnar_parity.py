"""Columnar/legacy parity for the forecast -> view -> query data path.

The columnar engine (``build_matrix`` + array-backed ``ProbabilisticView``
+ vectorised queries) must replicate the seed row-at-a-time semantics tuple
for tuple.  The reference implementations below mirror the seed code:
one CDF evaluation per forecast, one ``ProbTuple`` per range, Python loops
per query — and every batch result is checked against them across
Gaussian, uniform, and mixed density series, with and without the
sigma-cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import campus_temperature
from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.db.queries import (
    expected_value_query,
    most_probable_range_query,
    range_probability_query,
    threshold_query,
)
from repro.db.stream_queries import (
    exceedance_probability,
    sustained_exceedance_probability,
)
from repro.distributions.gaussian import Gaussian
from repro.distributions.uniform import Uniform
from repro.metrics.base import DensityForecast, DensitySeries
from repro.metrics.ewma import EWMAMetric
from repro.metrics.uniform_threshold import UniformThresholdingMetric
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.view.builder import ViewBuilder
from repro.view.omega import OmegaGrid

ATOL = 1e-12


def _gaussian_series(count: int = 60) -> DensitySeries:
    rng = np.random.default_rng(7)
    means = 20.0 + np.cumsum(rng.normal(0.0, 0.3, size=count))
    sigmas = rng.uniform(0.4, 2.5, size=count)
    return DensitySeries([
        DensityForecast(
            t=index, mean=float(m), distribution=Gaussian(float(m), float(s) ** 2),
            lower=float(m - 3 * s), upper=float(m + 3 * s), volatility=float(s),
        )
        for index, (m, s) in enumerate(zip(means, sigmas))
    ])


def _uniform_series(count: int = 60) -> DensitySeries:
    rng = np.random.default_rng(8)
    means = 5.0 + np.cumsum(rng.normal(0.0, 0.2, size=count))
    half_widths = rng.uniform(0.5, 2.0, size=count)
    forecasts = []
    for index, (m, u) in enumerate(zip(means, half_widths)):
        distribution = Uniform(float(m - u), float(m + u))
        forecasts.append(DensityForecast(
            t=index, mean=float(m), distribution=distribution,
            lower=distribution.low, upper=distribution.high,
            volatility=distribution.std(),
        ))
    return DensitySeries(forecasts)


def _mixed_series(count: int = 60) -> DensitySeries:
    gaussian = _gaussian_series(count)
    uniform = _uniform_series(count)
    forecasts = []
    for index in range(count):
        source = gaussian[index] if index % 2 == 0 else uniform[index]
        forecasts.append(DensityForecast(
            t=index, mean=source.mean, distribution=source.distribution,
            lower=source.lower, upper=source.upper,
            volatility=source.volatility,
        ))
    return DensitySeries(forecasts)


_SERIES = {
    "gaussian": _gaussian_series,
    "uniform": _uniform_series,
    "mixed": _mixed_series,
}


def _seed_view(name, forecasts, builder, grid) -> ProbabilisticView:
    """The seed ``from_rows``: per-row range expansion into ProbTuples."""
    tuples = []
    for forecast in forecasts:
        row = builder.build_row(forecast)
        for omega, probability in zip(grid.ranges_around(row.mean),
                                      row.probabilities):
            tuples.append(ProbTuple(
                t=row.t, low=omega.low, high=omega.high,
                probability=float(np.clip(probability, 0.0, 1.0)),
                label=omega.label,
            ))
    return ProbabilisticView(name, tuples)


def _assert_views_identical(actual: ProbabilisticView,
                            expected: ProbabilisticView) -> None:
    assert len(actual) == len(expected)
    assert actual.times == expected.times
    for a, b in zip(actual, expected):
        assert a.t == b.t
        assert a.low == b.low
        assert a.high == b.high
        assert a.label == b.label
        assert a.probability == pytest.approx(b.probability, abs=ATOL)


@pytest.mark.parametrize("kind", sorted(_SERIES))
@pytest.mark.parametrize("delta,n", [(0.5, 4), (0.25, 10)])
@pytest.mark.parametrize("cached", [False, True])
def test_build_matrix_matches_seed_row_path(kind, delta, n, cached):
    forecasts = _SERIES[kind]()
    grid = OmegaGrid(delta=delta, n=n)
    builder = ViewBuilder(grid)
    if cached:
        builder = builder.with_cache_for(forecasts, distance_constraint=0.05)
    expected = _seed_view("seed", forecasts, builder, grid)

    matrix_view = ProbabilisticView.from_matrix(
        "columnar", builder.build_matrix(forecasts), grid
    )
    _assert_views_identical(matrix_view, expected)

    rows_view = ProbabilisticView.from_rows(
        "rows", builder.build_rows(forecasts), grid
    )
    _assert_views_identical(rows_view, expected)


@pytest.mark.parametrize("kind", sorted(_SERIES))
def test_query_results_match_seed_loops(kind):
    forecasts = _SERIES[kind]()
    grid = OmegaGrid(delta=0.5, n=6)
    builder = ViewBuilder(grid)
    view = ProbabilisticView.from_matrix(
        "v", builder.build_matrix(forecasts), grid
    )

    # Seed threshold query: plain scan in tuple order.
    tau = 0.2
    expected_hits = [tup for tup in view if tup.probability >= tau]
    assert threshold_query(view, tau) == expected_hits

    # Seed modal query: max() per time, first-wins on ties.
    modal = most_probable_range_query(view)
    for t in view.times:
        assert modal[t] == max(view.tuples_at(t),
                               key=lambda tup: tup.probability)

    # Seed range-probability query: proportional overlap per tuple.
    low, high = 18.0, 21.0
    out = range_probability_query(view, low, high)
    for t in view.times:
        mass = 0.0
        for tup in view.tuples_at(t):
            overlap = min(high, tup.high) - max(low, tup.low)
            if overlap > 0:
                mass += tup.probability * (overlap / (tup.high - tup.low))
        assert out[t] == pytest.approx(min(mass, 1.0), abs=ATOL)

    # Seed expected-value query: midpoint-weighted mean.
    expectations = expected_value_query(view)
    for t in view.times:
        tuples = view.tuples_at(t)
        mass = sum(tup.probability for tup in tuples)
        if mass <= 0:
            expected = 0.5 * (min(tup.low for tup in tuples)
                              + max(tup.high for tup in tuples))
        else:
            expected = sum(
                tup.probability * 0.5 * (tup.low + tup.high) for tup in tuples
            ) / mass
        assert expectations[t] == pytest.approx(expected, abs=ATOL)

    # Seed exceedance: full mass above, proportional straddle.
    threshold = 20.0
    exceed = exceedance_probability(view, threshold)
    for t in view.times:
        mass = 0.0
        for tup in view.tuples_at(t):
            if tup.low >= threshold:
                mass += tup.probability
            elif tup.high > threshold:
                mass += tup.probability * (
                    (tup.high - threshold) / (tup.high - tup.low)
                )
        assert exceed[t] == pytest.approx(min(mass, 1.0), abs=ATOL)

    # Sustained exceedance: product over each window.
    window = 3
    sustained = sustained_exceedance_probability(view, threshold, window)
    times = view.times
    for index in range(window - 1, len(times)):
        product = 1.0
        for t in times[index - window + 1: index + 1]:
            product *= exceed[t]
        assert sustained[times[index]] == pytest.approx(product, abs=ATOL)


@pytest.mark.parametrize("metric", [
    VariableThresholdingMetric(),
    UniformThresholdingMetric(threshold=0.4),
    EWMAMetric(),
], ids=lambda metric: metric.name)
def test_vectorised_infer_batch_matches_loop(metric):
    series = campus_temperature(400, rng=3)
    batch = metric.run(series, 40, step=2)
    loop = DensitySeries([
        metric.infer(window, t)
        for t, window in series.iter_windows(40, step=2)
    ])
    assert list(batch.times) == list(loop.times)
    np.testing.assert_allclose(batch.means, loop.means, atol=1e-9)
    np.testing.assert_allclose(batch.volatilities, loop.volatilities, atol=1e-9)
    np.testing.assert_allclose(batch.lowers, loop.lowers, atol=1e-9)
    np.testing.assert_allclose(batch.uppers, loop.uppers, atol=1e-9)
    for a, b in zip(batch, loop):
        assert type(a.distribution) is type(b.distribution)

    # Vectorised PIT equals per-object CDF evaluation.
    legacy_pit = np.array([
        forecast.distribution.cdf(series[forecast.t]) for forecast in batch
    ])
    np.testing.assert_allclose(batch.pit(series), legacy_pit, atol=1e-15)


def test_probability_at_boundary_no_double_count():
    """A value exactly on a shared grid edge counts toward one range only;
    the uppermost edge of a time's range set stays covered."""
    tuples = [
        ProbTuple(t=0, low=0.0, high=1.0, probability=0.5),
        ProbTuple(t=0, low=1.0, high=2.0, probability=0.3),
        ProbTuple(t=0, low=2.0, high=3.0, probability=0.2),
    ]
    view = ProbabilisticView("edges", tuples)
    assert view.probability_at(0, 1.0) == pytest.approx(0.3)  # not 0.8
    assert view.probability_at(0, 0.0) == pytest.approx(0.5)
    assert view.probability_at(0, 3.0) == pytest.approx(0.2)  # closed top
    assert view.probability_at(0, 3.5) == 0.0
