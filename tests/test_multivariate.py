"""Tests for the multivariate extension (MultiSeries, regions, region views)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError, InvalidParameterError, QueryError
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.multivariate.builder import RegionTuple, RegionViewBuilder
from repro.multivariate.metric import VectorDensityMetric
from repro.multivariate.regions import Region, RegionSet
from repro.multivariate.series import MultiSeries


@pytest.fixture
def walk() -> MultiSeries:
    """A diagonal walk from (1, 1) to (3, 3) with mild noise."""
    rng = np.random.default_rng(0)
    n = 160
    return MultiSeries(
        {
            "x": np.linspace(1.0, 3.0, n) + rng.normal(0, 0.08, n),
            "y": np.linspace(1.0, 3.0, n) + rng.normal(0, 0.08, n),
        },
        name="walk",
    )


@pytest.fixture
def rooms() -> RegionSet:
    return RegionSet.grid2d([0.0, 2.0, 4.0], [0.0, 2.0, 4.0],
                            label_format="room({i},{j})")


class TestMultiSeries:
    def test_axes_and_lengths(self, walk):
        assert walk.axes == ("x", "y")
        assert len(walk) == 160
        assert len(walk.axis("x")) == 160

    def test_point_access(self):
        ms = MultiSeries({"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])})
        assert ms.point(1) == {"a": 2.0, "b": 4.0}

    def test_iter_points(self):
        ms = MultiSeries({"a": np.array([1.0, 2.0])})
        assert list(ms.iter_points()) == [{"a": 1.0}, {"a": 2.0}]

    def test_unequal_lengths_rejected(self):
        with pytest.raises(DataError):
            MultiSeries({"a": np.array([1.0]), "b": np.array([1.0, 2.0])})

    def test_unknown_axis_rejected(self, walk):
        with pytest.raises(InvalidParameterError):
            walk.axis("z")

    def test_empty_axes_rejected(self):
        with pytest.raises(InvalidParameterError):
            MultiSeries({})

    def test_slice_preserves_axes(self, walk):
        sub = walk.slice(10, 20)
        assert len(sub) == 10
        assert sub.axes == walk.axes


class TestRegion:
    def test_contains(self):
        region = Region("r", {"x": (0.0, 1.0), "y": (0.0, 1.0)})
        assert region.contains({"x": 0.5, "y": 0.5})
        assert not region.contains({"x": 1.5, "y": 0.5})

    def test_contains_requires_bounded_axes(self):
        region = Region("r", {"x": (0.0, 1.0)})
        with pytest.raises(InvalidParameterError):
            region.contains({"y": 0.5})

    def test_overlap_detection(self):
        a = Region("a", {"x": (0.0, 2.0)})
        b = Region("b", {"x": (2.0, 4.0)})
        c = Region("c", {"x": (1.0, 3.0)})
        assert not a.overlaps(b)  # Touching boxes do not share volume.
        assert a.overlaps(c)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Region("", {"x": (0.0, 1.0)})
        with pytest.raises(InvalidParameterError):
            Region("r", {})
        with pytest.raises(InvalidParameterError):
            Region("r", {"x": (1.0, 1.0)})


class TestRegionSet:
    def test_grid2d_produces_cells(self, rooms):
        assert len(rooms) == 4
        assert rooms.by_label("room(0,0)").bounds["x"] == (0.0, 2.0)

    def test_overlapping_regions_rejected(self):
        with pytest.raises(DataError, match="overlap"):
            RegionSet([
                Region("a", {"x": (0.0, 2.0)}),
                Region("b", {"x": (1.0, 3.0)}),
            ])

    def test_overlap_allowed_when_requested(self):
        regions = RegionSet(
            [Region("a", {"x": (0.0, 2.0)}), Region("b", {"x": (1.0, 3.0)})],
            require_disjoint=False,
        )
        assert len(regions) == 2

    def test_duplicate_labels_rejected(self):
        with pytest.raises(InvalidParameterError, match="duplicate"):
            RegionSet([
                Region("a", {"x": (0.0, 1.0)}),
                Region("a", {"x": (2.0, 3.0)}),
            ])

    def test_unknown_label(self, rooms):
        with pytest.raises(InvalidParameterError):
            rooms.by_label("lobby")


class TestVectorMetric:
    def test_shared_metric_across_axes(self, walk):
        metric = VectorDensityMetric(VariableThresholdingMetric())
        forecasts = metric.run(walk, H=30, step=10)
        assert forecasts[0].axes == ("x", "y")
        assert len(forecasts) == len(range(30, 160, 10))

    def test_per_axis_metrics(self, walk):
        metric = VectorDensityMetric({
            "x": VariableThresholdingMetric(),
            "y": VariableThresholdingMetric(kappa=2.0),
        })
        forecasts = metric.run(walk, H=30, step=20)
        assert len(forecasts) > 0

    def test_missing_axis_metric_rejected(self, walk):
        metric = VectorDensityMetric({"x": VariableThresholdingMetric()})
        with pytest.raises(InvalidParameterError):
            metric.run(walk, H=30)

    def test_region_probability_factorises(self, walk):
        metric = VectorDensityMetric(VariableThresholdingMetric())
        forecast = metric.run(walk, H=30, step=100)[0]
        region = Region("r", {"x": (0.0, 2.0), "y": (0.0, 2.0)})
        expected = (
            forecast.marginals["x"].distribution.prob(0.0, 2.0)
            * forecast.marginals["y"].distribution.prob(0.0, 2.0)
        )
        assert forecast.region_probability(region) == pytest.approx(expected)

    def test_region_on_unknown_axis_rejected(self, walk):
        metric = VectorDensityMetric(VariableThresholdingMetric())
        forecast = metric.run(walk, H=30, step=100)[0]
        with pytest.raises(InvalidParameterError):
            forecast.region_probability(Region("r", {"z": (0.0, 1.0)}))


class TestRegionView:
    def test_fig1_trajectory(self, walk, rooms):
        """The walk starts in room(0,0) and ends in room(1,1)."""
        metric = VectorDensityMetric(VariableThresholdingMetric())
        forecasts = metric.run(walk, H=30)
        view = RegionViewBuilder(rooms).build_view(forecasts, "alice")
        trajectory = view.trajectory()
        assert trajectory[0].region == "room(0,0)"
        assert trajectory[-1].region == "room(1,1)"

    def test_per_time_mass_bounded(self, walk, rooms):
        metric = VectorDensityMetric(VariableThresholdingMetric())
        forecasts = metric.run(walk, H=30, step=15)
        view = RegionViewBuilder(rooms).build_view(forecasts)
        for t in view.times:
            assert sum(view.probabilities_at(t).values()) <= 1.0 + 1e-6

    def test_missing_time_rejected(self, walk, rooms):
        metric = VectorDensityMetric(VariableThresholdingMetric())
        forecasts = metric.run(walk, H=30, step=50)
        view = RegionViewBuilder(rooms).build_view(forecasts)
        with pytest.raises(QueryError):
            view.probabilities_at(7)

    def test_region_tuple_validation(self):
        with pytest.raises(InvalidParameterError):
            RegionTuple(t=0, region="r", probability=1.5)
