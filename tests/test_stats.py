"""Tests for descriptive/diagnostic statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataError, InvalidParameterError
from repro.timeseries.stats import (
    RunningStats,
    acf,
    ljung_box,
    pacf,
    rolling_variance,
    sample_variance,
)


class TestSampleVariance:
    def test_matches_numpy_ddof1(self, rng):
        data = rng.normal(size=50)
        assert sample_variance(data) == pytest.approx(np.var(data, ddof=1))

    def test_single_value_is_zero(self):
        assert sample_variance([4.2]) == 0.0

    def test_constant_is_zero(self):
        assert sample_variance([2.0] * 10) == pytest.approx(0.0)


class TestRollingVariance:
    def test_matches_bruteforce(self, rng):
        data = rng.normal(size=40)
        window = 7
        out = rolling_variance(data, window)
        expected = [
            np.var(data[i : i + window], ddof=1)
            for i in range(len(data) - window + 1)
        ]
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_output_length(self):
        out = rolling_variance(np.arange(10.0), 4)
        assert out.size == 7

    def test_never_negative_despite_rounding(self):
        # Large offset stresses the cumulative-sum cancellation.
        data = 1e8 + np.sin(np.arange(200))
        assert np.all(rolling_variance(data, 10) >= 0.0)

    def test_window_too_small(self):
        with pytest.raises(InvalidParameterError):
            rolling_variance(np.arange(10.0), 1)

    def test_series_shorter_than_window(self):
        with pytest.raises(DataError):
            rolling_variance(np.arange(3.0), 5)


class TestAcf:
    def test_lag_zero_is_one(self, rng):
        assert acf(rng.normal(size=100), 5)[0] == 1.0

    def test_white_noise_small_lags(self, rng):
        rho = acf(rng.normal(size=4000), 3)
        assert np.all(np.abs(rho[1:]) < 0.08)

    def test_ar1_acf_decays_geometrically(self, rng):
        phi = 0.8
        noise = rng.normal(size=8000)
        data = np.empty(8000)
        data[0] = noise[0]
        for i in range(1, 8000):
            data[i] = phi * data[i - 1] + noise[i]
        rho = acf(data, 3)
        assert rho[1] == pytest.approx(phi, abs=0.05)
        assert rho[2] == pytest.approx(phi**2, abs=0.07)

    def test_constant_series_convention(self):
        rho = acf(np.ones(50), 3)
        assert rho[0] == 1.0
        assert np.all(rho[1:] == 0.0)

    def test_nlags_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            acf(rng.normal(size=10), 10)
        with pytest.raises(InvalidParameterError):
            acf(rng.normal(size=10), -1)


class TestPacf:
    def test_ar1_pacf_cuts_off_after_lag1(self, rng):
        phi = 0.7
        noise = rng.normal(size=8000)
        data = np.empty(8000)
        data[0] = noise[0]
        for i in range(1, 8000):
            data[i] = phi * data[i - 1] + noise[i]
        partial = pacf(data, 4)
        assert partial[1] == pytest.approx(phi, abs=0.05)
        assert np.all(np.abs(partial[2:]) < 0.08)

    def test_lag_zero_is_one(self, rng):
        assert pacf(rng.normal(size=100), 3)[0] == 1.0


class TestLjungBox:
    def test_white_noise_not_rejected(self, rng):
        _stat, p = ljung_box(rng.normal(size=2000), 10)
        assert p > 0.01

    def test_correlated_series_rejected(self, rng):
        noise = rng.normal(size=2000)
        data = np.empty(2000)
        data[0] = noise[0]
        for i in range(1, 2000):
            data[i] = 0.8 * data[i - 1] + noise[i]
        _stat, p = ljung_box(data, 10)
        assert p < 1e-6

    def test_lags_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            ljung_box(rng.normal(size=10), 0)
        with pytest.raises(InvalidParameterError):
            ljung_box(rng.normal(size=10), 10)


class TestRunningStats:
    def test_empty_raises(self):
        stats = RunningStats()
        with pytest.raises(DataError):
            _ = stats.mean

    def test_variance_with_one_value_is_zero(self):
        stats = RunningStats()
        stats.push(3.0)
        assert stats.variance == 0.0

    def test_non_finite_rejected(self):
        stats = RunningStats()
        with pytest.raises(DataError):
            stats.push(float("inf"))

    def test_min_max_tracking(self):
        stats = RunningStats()
        for value in [3.0, -1.0, 7.0]:
            stats.push(value)
        assert stats.minimum == -1.0
        assert stats.maximum == 7.0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=100,
    )
)
def test_running_stats_matches_numpy(values):
    """Welford accumulation agrees with numpy's batch mean/variance."""
    stats = RunningStats()
    for value in values:
        stats.push(value)
    assert stats.count == len(values)
    assert stats.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)
    assert stats.variance == pytest.approx(
        np.var(values, ddof=1), rel=1e-6, abs=1e-6
    )
