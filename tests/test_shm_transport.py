"""Shared-memory result-transport suite (:mod:`repro.service.shm`).

Four contracts:

1. **Descriptor round-trip**: any array set packed into a block
   rehydrates bit-identically through its :class:`ArraySpec` slices —
   property-tested over random dtypes, shapes (including empty), and
   raw bit patterns (NaNs and all).
2. **Arena lifecycle**: blocks are unlinked on success, on decode
   errors, on pack failures, and :meth:`ShmArena.reap` is idempotent —
   no path leaks a ``/dev/shm`` segment.
3. **Fallback parity**: the pickle transport (``REPRO_SHM_TRANSPORT=0``
   or a per-chunk pack failure) produces envelopes equal to the shm
   path, and the fallback is counted in the backend's transport stats,
   never silent.
4. **Bit-identity**: canonical result bytes match across sequential,
   thread, and process backends — cold and warm, shm on and off —
   including ``SIMULATE`` (seeded) and multi-aggregate selects.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.protocol import canonical_dumps, serialize_result
from repro.service import (
    CatalogQueryService,
    ProcessBackend,
    ShmArena,
    shm_available,
)
from repro.service.shm import ArrayResult, decode_result, pack_chunk
from repro.store import Catalog
from repro.view.omega import OmegaGrid

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

_SHM_DIR = Path("/dev/shm")


def _leaked_blocks() -> list[str]:
    """This process's leftover transport blocks (Linux-visible only)."""
    if not _SHM_DIR.is_dir():
        return []
    return sorted(
        entry.name
        for entry in _SHM_DIR.iterdir()
        if entry.name.startswith(f"repro-{os.getpid()}-")
    )


# ----------------------------------------------------------------------
# 1. Descriptor round-trip (property).
# ----------------------------------------------------------------------
_DTYPES = ("<i8", "<f8", "<f4", "<i4", "<u2", "|u1")


@st.composite
def _random_arrays(draw) -> dict[str, np.ndarray]:
    """A slot-name -> array dict with arbitrary dtypes/shapes/bits."""
    arrays: dict[str, np.ndarray] = {}
    for index in range(draw(st.integers(min_value=0, max_value=3))):
        dtype = np.dtype(draw(st.sampled_from(_DTYPES)))
        ndim = draw(st.integers(min_value=1, max_value=2))
        shape = tuple(
            draw(st.integers(min_value=0, max_value=6)) for _ in range(ndim)
        )
        count = 1
        for dim in shape:
            count *= dim
        raw = draw(
            st.binary(
                min_size=count * dtype.itemsize,
                max_size=count * dtype.itemsize,
            )
        )
        arrays[f"slot-{index}"] = np.frombuffer(raw, dtype=dtype).reshape(
            shape
        )
    return arrays


@needs_shm
@settings(max_examples=30, deadline=None)
@given(chunk=st.lists(_random_arrays(), min_size=1, max_size=3))
def test_descriptor_roundtrip_bit_identical(chunk):
    """Random arrays rehydrate from the block byte-for-byte, aligned."""
    arena = ShmArena()
    results = [
        ArrayResult(
            series_id=f"s-{index}",
            kernel="expected_value",
            kind="raw",
            arrays=arrays,
        )
        for index, arrays in enumerate(chunk)
    ]
    originals = [
        {name: array.copy() for name, array in result.arrays.items()}
        for result in results
    ]
    descriptor = pack_chunk(results, arena.next_name())
    shm = shared_memory.SharedMemory(name=descriptor.shm_name)
    try:
        for packed, original in zip(descriptor.results, originals):
            assert packed.arrays.keys() == original.keys()
            for name, spec in packed.arrays.items():
                source = original[name]
                assert spec.offset % np.dtype(spec.dtype).itemsize == 0
                rehydrated = (
                    np.frombuffer(
                        shm.buf,
                        dtype=np.dtype(spec.dtype),
                        count=spec.count,
                        offset=spec.offset,
                    )
                    .reshape(spec.shape)
                    .copy()
                )
                assert rehydrated.dtype == source.dtype
                assert rehydrated.shape == source.shape
                assert rehydrated.tobytes() == source.tobytes()
    finally:
        shm.close()
        shm.unlink()
    assert not _leaked_blocks()


@needs_shm
@settings(max_examples=25, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10**6),
            st.floats(allow_nan=False, allow_infinity=False, width=64),
        ),
        max_size=12,
        unique_by=lambda pair: pair[0],
    )
)
def test_mapping_decode_matches_pickle_path(pairs):
    """Both transports decode one mapping to identical dict and score."""
    times = np.array([pair[0] for pair in pairs], dtype=np.int64)
    values = np.array([pair[1] for pair in pairs], dtype=np.float64)

    def result() -> ArrayResult:
        return ArrayResult(
            series_id="s-0",
            kernel="exceedance",
            kind="mapping",
            arrays={"times": times.copy(), "values": values.copy()},
        )

    arena = ShmArena()
    descriptor = pack_chunk([result()], arena.next_name())
    [(_packed, via_shm, shm_score)] = arena.unpack(descriptor)
    via_pickle, pickle_score = decode_result(result())
    assert via_shm == via_pickle
    assert shm_score == pickle_score
    assert not _leaked_blocks()


# ----------------------------------------------------------------------
# 2. Arena lifecycle under exceptions.
# ----------------------------------------------------------------------
@needs_shm
def test_unpack_unlinks_even_when_decode_raises():
    arena = ShmArena()
    bogus = ArrayResult(
        series_id="s-0",
        kernel="expected_value",
        kind="bogus",
        arrays={"times": np.arange(3, dtype=np.int64)},
    )
    descriptor = pack_chunk([bogus], arena.next_name())
    with pytest.raises(ValueError, match="kind"):
        arena.unpack(descriptor)
    # The finally branch unlinked the block despite the decode error.
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=descriptor.shm_name)
    assert not _leaked_blocks()


@needs_shm
def test_pack_failure_unlinks_its_own_block():
    arena = ShmArena()
    name = arena.next_name()
    # Object arrays cannot be written into a raw buffer: pack_chunk
    # creates the block, fails mid-copy, and must unlink before raising.
    poison = ArrayResult(
        series_id="s-0",
        kernel="expected_value",
        kind="mapping",
        arrays={"values": np.array([object()], dtype=object)},
    )
    with pytest.raises((TypeError, ValueError)):
        pack_chunk([poison], name)
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    assert not _leaked_blocks()


@needs_shm
def test_reap_is_idempotent_and_tolerates_absent_blocks():
    arena = ShmArena()
    name = arena.next_name()
    arena.reap(name)  # Never created: silently nothing.
    result = ArrayResult(
        series_id="s-0",
        kernel="expected_value",
        kind="raw",
        arrays={"x": np.arange(4.0)},
    )
    pack_chunk([result], name)
    arena.reap(name)  # Live block: unlinked.
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)
    arena.reap(name)  # Already gone: still silent.
    assert not _leaked_blocks()


# ----------------------------------------------------------------------
# 3. Fallback-to-pickle parity and accounting.
# ----------------------------------------------------------------------
def test_pickle_fallback_counted_and_envelope_identical():
    times = np.array([1, 2, 3], dtype=np.int64)
    values = np.array([0.25, 0.5, 1.0], dtype=np.float64)

    def results() -> list[ArrayResult]:
        return [
            ArrayResult(
                series_id="s-0",
                kernel="exceedance",
                kind="mapping",
                arrays={"times": times.copy(), "values": values.copy()},
            )
        ]

    backend = ProcessBackend(2)
    try:
        via_shm = None
        if backend.shm:
            descriptor = pack_chunk(results(), backend._arena.next_name())
            via_shm = backend._collect(descriptor, descriptor.shm_name)
        # A worker that had a block name assigned but shipped plain
        # ArrayResults anyway is exactly the per-chunk pack-failure
        # fallback; the backend must count it, not hide it.
        via_pickle = backend._collect(results(), backend._arena.next_name())
        stats = backend.transport_stats()
        assert stats["pickle_chunks"] == 1
        assert stats["shm_fallbacks"] == 1
        if via_shm is not None:
            assert stats["shm_chunks"] == 1
            first, second = via_shm[0], via_pickle[0]
            assert first.series_id == second.series_id
            assert first.result == second.result
            assert first.score == second.score
            assert first.error == second.error
    finally:
        backend.close()
    assert not _leaked_blocks()


# ----------------------------------------------------------------------
# 4. End-to-end bit-identity, shm on and off, cold and warm.
# ----------------------------------------------------------------------
H = 16
GRID = OmegaGrid(delta=0.5, n=4)
SERIES = 6


@pytest.fixture(scope="module")
def catalog_root(tmp_path_factory):
    root = tmp_path_factory.mktemp("shm-transport") / "cat"
    catalog = Catalog(root, segment_layout="v2")
    rng = np.random.default_rng(7)
    for index in range(SERIES):
        series_id = f"s-{index}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=H, grid=GRID
        )
        values = 20.0 + 0.05 * index + np.cumsum(
            rng.normal(0.0, 0.05, size=48)
        )
        catalog.append(series_id, values[:30])
        catalog.append(series_id, values[30:])
    return root


def _statements(root) -> list[str]:
    return [
        f"SELECT expected_value FROM CATALOG '{root}'",
        f"SELECT exceedance(20.3) FROM CATALOG '{root}'",
        f"SELECT threshold(0.2) FROM CATALOG '{root}' TOP 3",
        f"SELECT time_above(20.3, 5) FROM CATALOG '{root}' "
        f"WHERE t BETWEEN 18 AND 60",
        f"SIMULATE 3 SEED 42 FROM CATALOG '{root}'",
        f"SELECT expected_value, exceedance(20.3) FROM CATALOG '{root}'",
    ]


def _canonical(result) -> str:
    return canonical_dumps(serialize_result(result))


def _run_all(root, backend: str, **kwargs) -> list[str]:
    with CatalogQueryService(root, backend=backend, **kwargs) as service:
        return [_canonical(service.execute(s)) for s in _statements(root)]


def test_bit_identity_across_backends_and_transports(
    catalog_root, monkeypatch
):
    reference = _run_all(catalog_root, "sequential")
    assert _run_all(catalog_root, "thread", max_workers=4) == reference

    backend = ProcessBackend(2)
    with CatalogQueryService(catalog_root, backend=backend) as service:
        cold = [_canonical(service.execute(s)) for s in _statements(
            catalog_root
        )]
        warm = [_canonical(service.execute(s)) for s in _statements(
            catalog_root
        )]
        stats = backend.transport_stats()
    assert cold == reference
    assert warm == reference
    if shm_available():
        assert stats["mode"] == "shm"
        assert stats["shm_chunks"] > 0
        assert stats["shm_fallbacks"] == 0
        assert stats["shm_bytes"] > 0
    else:
        assert stats["mode"] == "pickle"

    monkeypatch.setenv("REPRO_SHM_TRANSPORT", "0")
    forced = ProcessBackend(2)
    assert forced.transport == "pickle"
    with CatalogQueryService(catalog_root, backend=forced) as service:
        pickled = [_canonical(service.execute(s)) for s in _statements(
            catalog_root
        )]
        pickle_stats = forced.transport_stats()
    assert pickled == reference
    assert pickle_stats["mode"] == "pickle"
    assert pickle_stats["shm_chunks"] == 0
    assert pickle_stats["pickle_chunks"] > 0
    assert not _leaked_blocks()


def test_transport_mode_surfaces_in_stats_payload(catalog_root):
    with CatalogQueryService(
        catalog_root, backend="process", max_workers=2
    ) as service:
        service.execute(_statements(catalog_root)[0])
        stats = service.backend.transport_stats()
    assert stats["mode"] in ("shm", "pickle")
    expected = "shm" if shm_available() else "pickle"
    assert stats["mode"] == expected
    assert not _leaked_blocks()
