"""Tests for the TimeSeries container and sliding windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError, InvalidParameterError
from repro.timeseries.series import TimeSeries


class TestConstruction:
    def test_default_timestamps(self):
        series = TimeSeries([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(series.timestamps, [0.0, 1.0, 2.0])

    def test_explicit_timestamps(self):
        series = TimeSeries([1.0, 2.0], [10.0, 20.0])
        np.testing.assert_array_equal(series.timestamps, [10.0, 20.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError, match="equal length"):
            TimeSeries([1.0, 2.0], [1.0])

    def test_non_increasing_timestamps_rejected(self):
        with pytest.raises(DataError, match="strictly increasing"):
            TimeSeries([1.0, 2.0], [1.0, 1.0])

    def test_nan_values_rejected(self):
        with pytest.raises(DataError, match="non-finite"):
            TimeSeries([1.0, float("nan")])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            TimeSeries([])

    def test_values_are_read_only(self):
        series = TimeSeries([1.0, 2.0])
        with pytest.raises(ValueError):
            series.values[0] = 99.0

    def test_indexing_and_len(self):
        series = TimeSeries([5.0, 6.0, 7.0])
        assert len(series) == 3
        assert series[1] == 6.0
        assert series[-1] == 7.0


class TestWindows:
    def setup_method(self):
        self.series = TimeSeries(np.arange(10, dtype=float))

    def test_window_ends_before_t(self):
        """The paper's S^H_{t-1} convention: window for t excludes value t."""
        window = self.series.window(t=5, H=3)
        np.testing.assert_array_equal(window, [2.0, 3.0, 4.0])

    def test_window_at_first_valid_t(self):
        np.testing.assert_array_equal(self.series.window(t=3, H=3), [0, 1, 2])

    def test_window_too_early_rejected(self):
        with pytest.raises(InvalidParameterError):
            self.series.window(t=2, H=3)

    def test_window_past_end_rejected(self):
        with pytest.raises(InvalidParameterError):
            self.series.window(t=11, H=3)

    def test_invalid_H_rejected(self):
        with pytest.raises(InvalidParameterError):
            self.series.window(t=5, H=0)

    def test_iter_windows_covers_all_times(self):
        times = [t for t, _ in self.series.iter_windows(H=4)]
        assert times == list(range(4, 10))

    def test_iter_windows_step(self):
        times = [t for t, _ in self.series.iter_windows(H=2, step=3)]
        assert times == [2, 5, 8]

    def test_iter_windows_start_stop(self):
        times = [t for t, _ in self.series.iter_windows(H=2, start=5, stop=8)]
        assert times == [5, 6, 7]

    def test_iter_windows_start_below_H_clamped(self):
        times = [t for t, _ in self.series.iter_windows(H=4, start=0)]
        assert times[0] == 4

    def test_iter_windows_bad_step(self):
        with pytest.raises(InvalidParameterError):
            list(self.series.iter_windows(H=2, step=0))


class TestDerivedSeries:
    def setup_method(self):
        self.series = TimeSeries(
            np.array([1.0, 2.0, 3.0, 4.0]), np.array([10.0, 20.0, 30.0, 40.0]),
            name="s",
        )

    def test_slice(self):
        sub = self.series.slice(1, 3)
        np.testing.assert_array_equal(sub.values, [2.0, 3.0])
        np.testing.assert_array_equal(sub.timestamps, [20.0, 30.0])

    def test_slice_bounds_validated(self):
        with pytest.raises(InvalidParameterError):
            self.series.slice(3, 2)

    def test_between_times_inclusive(self):
        sub = self.series.between_times(20.0, 30.0)
        np.testing.assert_array_equal(sub.values, [2.0, 3.0])

    def test_between_times_empty_rejected(self):
        with pytest.raises(DataError, match="no samples"):
            self.series.between_times(100.0, 200.0)

    def test_with_values_keeps_time_axis(self):
        replaced = self.series.with_values([9.0, 8.0, 7.0, 6.0])
        np.testing.assert_array_equal(replaced.timestamps, self.series.timestamps)
        np.testing.assert_array_equal(replaced.values, [9.0, 8.0, 7.0, 6.0])

    def test_with_values_length_checked(self):
        with pytest.raises(DataError):
            self.series.with_values([1.0])


class TestSummary:
    def test_summary_fields(self):
        series = TimeSeries(
            np.array([1.0, 3.0, 5.0]), np.array([0.0, 2.0, 4.0]), name="x"
        )
        summary = series.summary()
        assert summary.name == "x"
        assert summary.count == 3
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.median_interval == 2.0

    def test_summary_as_dict(self):
        summary = TimeSeries([1.0, 2.0]).summary()
        d = summary.as_dict()
        assert d["count"] == 2
        assert "median_interval" in d
