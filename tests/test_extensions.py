"""Tests for the extension layer: EWMA metric, order selection, calibration,
stream queries, humidity data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import campus_humidity, campus_temperature
from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.db.stream_queries import (
    exceedance_probability,
    expected_time_above,
    sustained_exceedance_probability,
    windowed_expected_value,
)
from repro.evaluation.calibration import (
    calibration_report,
    coverage_curve,
    ks_uniformity_test,
    pit_histogram,
)
from repro.exceptions import DataError, InvalidParameterError
from repro.metrics.ewma import EWMAMetric
from repro.metrics.registry import create_metric
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.timeseries.arma import ARMAModel, ARMAParams
from repro.timeseries.selection import rolling_forecast_mse, select_arma_order
from repro.timeseries.stats import rolling_variance


class TestEWMAMetric:
    def test_registered(self):
        assert isinstance(create_metric("ewma"), EWMAMetric)

    def test_tracks_level(self, rng):
        window = 20.0 + rng.normal(0, 0.1, 60)
        forecast = EWMAMetric().infer(window, t=60)
        assert forecast.mean == pytest.approx(20.0, abs=0.3)

    def test_variance_adapts_to_turbulence(self, rng):
        calm = 10.0 + 0.01 * rng.standard_normal(60)
        turbulent = 10.0 + 2.0 * rng.standard_normal(60)
        metric = EWMAMetric()
        assert (
            metric.infer(turbulent, 60).volatility
            > 10.0 * metric.infer(calm, 60).volatility
        )

    def test_much_faster_than_arma_garch(self, campus_series):
        import time

        from repro.metrics.arma_garch import ARMAGARCHMetric

        start = time.perf_counter()
        EWMAMetric().run(campus_series, 60, step=5)
        ewma_time = time.perf_counter() - start
        start = time.perf_counter()
        ARMAGARCHMetric().run(campus_series, 60, step=5)
        garch_time = time.perf_counter() - start
        assert ewma_time < garch_time / 5.0

    def test_decay_validation(self):
        with pytest.raises(InvalidParameterError):
            EWMAMetric(mean_decay=0.0)
        with pytest.raises(InvalidParameterError):
            EWMAMetric(variance_decay=1.0)

    def test_short_window_rejected(self):
        with pytest.raises(InvalidParameterError):
            EWMAMetric().infer(np.array([1.0, 2.0]), t=2)


class TestOrderSelection:
    def test_recovers_ar1_preference(self):
        data = ARMAModel.simulate(
            ARMAParams(const=0.0, ar=np.array([0.8]), sigma2=1.0), 600, rng=0
        )
        result = select_arma_order(data, max_p=3, max_q=1)
        assert result.best_bic[0] >= 1  # Some AR structure must be chosen.
        # The white-noise model must not win on AIC either.
        assert result.best_aic != (0, 0)

    def test_white_noise_prefers_small_models(self, rng):
        result = select_arma_order(rng.standard_normal(600), max_p=3, max_q=1)
        assert result.best_bic[0] <= 1 and result.best_bic[1] <= 1

    def test_table_contains_grid(self):
        data = ARMAModel.simulate(
            ARMAParams(const=0.0, ar=np.array([0.5]), sigma2=1.0), 300, rng=1
        )
        result = select_arma_order(data, max_p=2, max_q=1)
        assert len(result.table) == 6  # (p, q) in {0..2} x {0..1}.
        assert result.score(1, 0).sigma2 > 0

    def test_score_missing_order_rejected(self):
        data = ARMAModel.simulate(
            ARMAParams(const=0.0, ar=np.array([0.5]), sigma2=1.0), 300, rng=2
        )
        result = select_arma_order(data, max_p=1, max_q=0)
        with pytest.raises(InvalidParameterError):
            result.score(5, 5)

    def test_rolling_mse_prefers_true_order(self):
        data = ARMAModel.simulate(
            ARMAParams(const=0.0, ar=np.array([0.9]), sigma2=1.0), 500, rng=3
        )
        mse_ar1 = rolling_forecast_mse(data, 1, 0, H=80, step=10)
        mse_mean = rolling_forecast_mse(data, 0, 0, H=80, step=10)
        assert mse_ar1 < mse_mean

    def test_rolling_mse_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            rolling_forecast_mse(rng.standard_normal(200), 5, 0, H=6)


class TestCalibration:
    def test_pit_histogram_uniform(self):
        z = np.linspace(0.001, 0.999, 1000)
        histogram = pit_histogram(z, n_bins=10)
        np.testing.assert_allclose(histogram, 0.1, atol=0.01)

    def test_pit_histogram_validation(self):
        with pytest.raises(DataError):
            pit_histogram(np.array([1.2]))
        with pytest.raises(InvalidParameterError):
            pit_histogram(np.array([0.5]), n_bins=1)

    def test_ks_detects_miscalibration(self, rng):
        uniform = rng.uniform(size=2000)
        clustered = 0.5 + 0.01 * rng.standard_normal(2000)
        _s, p_good = ks_uniformity_test(uniform)
        _s, p_bad = ks_uniformity_test(np.clip(clustered, 0, 1))
        assert p_good > 0.01
        assert p_bad < 1e-10

    def test_coverage_curve_nominal_vs_empirical(self, campus_series):
        forecasts = VariableThresholdingMetric().run(campus_series, 40, step=5)
        rows = coverage_curve(forecasts, campus_series, kappas=(1.0, 3.0))
        assert rows[0]["kappa"] == 1.0
        # kappa=3 nominal coverage for Gaussians is ~0.9973.
        assert rows[1]["nominal"] == pytest.approx(0.9973, abs=1e-3)
        assert 0.0 <= rows[1]["empirical"] <= 1.0

    def test_full_report(self, campus_series):
        forecasts = VariableThresholdingMetric().run(campus_series, 40, step=5)
        report = calibration_report(forecasts, campus_series)
        assert report.density_distance > 0
        assert report.histogram.sum() == pytest.approx(1.0)
        assert 0.0 <= report.worst_coverage_gap() <= 1.0

    def test_kappa_validation(self, campus_series):
        forecasts = VariableThresholdingMetric().run(campus_series, 40, step=20)
        with pytest.raises(InvalidParameterError):
            coverage_curve(forecasts, campus_series, kappas=(0.0,))
        with pytest.raises(InvalidParameterError):
            coverage_curve(forecasts, campus_series, kappas=())


def _simple_view() -> ProbabilisticView:
    """Three times, two ranges each, easily hand-checkable."""
    tuples = [
        ProbTuple(t=1, low=0.0, high=10.0, probability=0.7),
        ProbTuple(t=1, low=10.0, high=20.0, probability=0.3),
        ProbTuple(t=2, low=0.0, high=10.0, probability=0.4),
        ProbTuple(t=2, low=10.0, high=20.0, probability=0.6),
        ProbTuple(t=3, low=0.0, high=10.0, probability=0.2),
        ProbTuple(t=3, low=10.0, high=20.0, probability=0.8),
    ]
    return ProbabilisticView("v", tuples)


class TestStreamQueries:
    def test_exceedance_full_and_partial(self):
        view = _simple_view()
        out = exceedance_probability(view, 10.0)
        assert out[1] == pytest.approx(0.3)
        # Threshold inside the lower range: half of its mass counts.
        partial = exceedance_probability(view, 5.0)
        assert partial[1] == pytest.approx(0.7 * 0.5 + 0.3)

    def test_windowed_expected_value(self):
        view = _simple_view()
        out = windowed_expected_value(view, window=2)
        # E[t=1] = .7*5 + .3*15 = 8; E[t=2] = .4*5+.6*15 = 11; mean 9.5.
        assert out[2] == pytest.approx(9.5)
        assert set(out) == {2, 3}

    def test_sustained_exceedance_multiplies(self):
        view = _simple_view()
        out = sustained_exceedance_probability(view, 10.0, window=3)
        assert out[3] == pytest.approx(0.3 * 0.6 * 0.8)

    def test_expected_time_above_is_linear(self):
        view = _simple_view()
        out = expected_time_above(view, 10.0, window=3)
        assert out[3] == pytest.approx(0.3 + 0.6 + 0.8)

    def test_window_validation(self):
        view = _simple_view()
        with pytest.raises(InvalidParameterError):
            windowed_expected_value(view, 0)
        with pytest.raises(InvalidParameterError):
            sustained_exceedance_probability(view, 10.0, window=10)


class TestHumidityData:
    def test_physical_range(self):
        series = campus_humidity(2000, rng=0)
        assert series.values.min() >= 5.0
        assert series.values.max() <= 100.0

    def test_volatility_regimes_present(self):
        series = campus_humidity(3000, rng=0)
        variances = rolling_variance(series.values, 30)
        assert np.percentile(variances, 90) > 3.0 * np.percentile(variances, 10)

    def test_anticorrelated_with_temperature_diurnal(self):
        n = 1440  # Two days.
        temperature = campus_temperature(n, rng=0)
        humidity = campus_humidity(n, rng=0)
        corr = np.corrcoef(temperature.values, humidity.values)[0, 1]
        assert corr < 0.1  # Warm afternoons are dry.

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            campus_humidity(1)
