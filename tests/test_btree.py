"""Tests for the B-tree sorted map backing the sigma-cache."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.util.btree import BTreeMap


class TestBasics:
    def test_empty_tree(self):
        tree = BTreeMap()
        assert len(tree) == 0
        assert not tree
        assert 1.0 not in tree
        assert tree.get(1.0) is None
        assert tree.get(1.0, "fallback") == "fallback"

    def test_single_insert_and_lookup(self):
        tree = BTreeMap()
        tree[3.5] = "x"
        assert len(tree) == 1
        assert tree[3.5] == "x"
        assert 3.5 in tree

    def test_getitem_missing_raises_keyerror(self):
        tree = BTreeMap()
        tree[1.0] = "a"
        with pytest.raises(KeyError):
            tree[2.0]

    def test_replace_existing_key_keeps_size(self):
        tree = BTreeMap()
        tree[1.0] = "a"
        tree[1.0] = "b"
        assert len(tree) == 1
        assert tree[1.0] == "b"

    def test_stored_none_distinct_from_absent(self):
        tree = BTreeMap()
        tree[1.0] = None
        assert 1.0 in tree
        assert tree.get(1.0, "fallback") is None

    def test_min_degree_validation(self):
        with pytest.raises(InvalidParameterError):
            BTreeMap(min_degree=1)

    def test_min_max_on_empty_raise(self):
        tree = BTreeMap()
        with pytest.raises(KeyError):
            tree.min_item()
        with pytest.raises(KeyError):
            tree.max_item()


class TestOrderedAccess:
    def setup_method(self):
        self.tree = BTreeMap(min_degree=2)  # Small degree forces splits.
        self.keys = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 0.0]
        for key in self.keys:
            self.tree[key] = f"v{key}"

    def test_iteration_is_sorted(self):
        assert list(self.tree.keys()) == sorted(self.keys)

    def test_items_pairs_match(self):
        for key, value in self.tree.items():
            assert value == f"v{key}"

    def test_min_max(self):
        assert self.tree.min_item() == (0.0, "v0.0")
        assert self.tree.max_item() == (9.0, "v9.0")

    def test_floor_exact(self):
        assert self.tree.floor_item(5.0) == (5.0, "v5.0")

    def test_floor_between_keys(self):
        assert self.tree.floor_item(5.5) == (5.0, "v5.0")

    def test_floor_below_minimum_is_none(self):
        assert self.tree.floor_item(-0.5) is None

    def test_floor_above_maximum_is_max(self):
        assert self.tree.floor_item(100.0) == (9.0, "v9.0")

    def test_ceiling_exact(self):
        assert self.tree.ceiling_item(5.0) == (5.0, "v5.0")

    def test_ceiling_between_keys(self):
        assert self.tree.ceiling_item(5.5) == (6.0, "v6.0")

    def test_ceiling_above_maximum_is_none(self):
        assert self.tree.ceiling_item(9.5) is None

    def test_ceiling_below_minimum_is_min(self):
        assert self.tree.ceiling_item(-10.0) == (0.0, "v0.0")

    def test_invariants_hold_after_splits(self):
        self.tree.check_invariants()
        assert self.tree.height() > 1  # Ten keys at degree 2 must split.


class TestScale:
    def test_many_sequential_inserts(self):
        tree = BTreeMap(min_degree=3)
        n = 2000
        for i in range(n):
            tree[float(i)] = i
        assert len(tree) == n
        tree.check_invariants()
        assert list(tree.keys()) == [float(i) for i in range(n)]

    def test_many_random_inserts_with_duplicates(self):
        rng = np.random.default_rng(0)
        tree = BTreeMap(min_degree=4)
        reference: dict[float, int] = {}
        for i, raw in enumerate(rng.integers(0, 500, size=3000)):
            key = float(raw)
            tree[key] = i
            reference[key] = i
        assert len(tree) == len(reference)
        tree.check_invariants()
        for key, value in reference.items():
            assert tree[key] == value

    def test_height_is_logarithmic(self):
        tree = BTreeMap(min_degree=16)
        for i in range(10000):
            tree[float(i)] = i
        # Degree 16 -> at least 16 keys per internal node: height <= 4.
        assert tree.height() <= 4


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-10000, max_value=10000), min_size=0, max_size=300))
def test_btree_matches_dict_reference(keys):
    """Insertions match a dict + sorted() reference implementation."""
    tree = BTreeMap(min_degree=2)
    reference: dict[int, int] = {}
    for index, key in enumerate(keys):
        tree[key] = index
        reference[key] = index
    assert len(tree) == len(reference)
    assert list(tree.keys()) == sorted(reference)
    for key, value in reference.items():
        assert tree[key] == value
    tree.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200,
             unique=True),
    st.integers(min_value=-100, max_value=1100),
)
def test_btree_floor_ceiling_match_reference(keys, probe):
    """floor/ceiling agree with a brute-force scan of the sorted keys."""
    tree = BTreeMap(min_degree=2)
    for key in keys:
        tree[key] = key
    sorted_keys = sorted(keys)
    floor_expected = max((k for k in sorted_keys if k <= probe), default=None)
    ceil_expected = min((k for k in sorted_keys if k >= probe), default=None)
    floor_actual = tree.floor_item(probe)
    ceil_actual = tree.ceiling_item(probe)
    assert (floor_actual[0] if floor_actual else None) == floor_expected
    assert (ceil_actual[0] if ceil_actual else None) == ceil_expected
