"""Tests for the observability stack (`repro.obs`).

Pins the PR's acceptance criteria:

* the registry is **exact under concurrency** — N threads hammering one
  counter/histogram lose no updates (and the server's request counters,
  rebuilt on a single lock, stay internally consistent);
* a traced query's contiguous top-level stage spans **sum to within 10%
  of its wall time** on every backend (sequential, thread, process);
* ``{"op": "metrics"}`` serves **parseable Prometheus text** with a
  latency histogram per aggregate kind.
"""

from __future__ import annotations

import math
import re
import threading

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_SLOW_QUERY_MS,
    MAX_SERIES_SPANS,
    MetricsRegistry,
    NULL_TRACE,
    NullRegistry,
    QueryTrace,
    SlowQueryLog,
    default_registry,
)
from repro.server import Client, QueryServer, ServerThread
from repro.server.app import ServerStats
from repro.service import CatalogQueryService
from repro.service.executor import _statement_text
from repro.store import Catalog
from repro.view.omega import OmegaGrid
from repro.view.sql import parse_select_query

H = 20
GRID = OmegaGrid(delta=0.5, n=4)


def _fill_catalog(root, series_count=6, length=120, seed=3) -> Catalog:
    catalog = Catalog(root)
    rng = np.random.default_rng(seed)
    for index in range(series_count):
        series_id = f"sensor-{index:02d}"
        catalog.create_series(
            series_id, metric="variable_threshold", H=H, grid=GRID
        )
        values = 20.0 + index * 0.5 + np.cumsum(
            rng.normal(0.0, 0.15, size=length)
        )
        catalog.append(series_id, values)
    return catalog


@pytest.fixture(scope="module")
def catalog(tmp_path_factory) -> Catalog:
    return _fill_catalog(tmp_path_factory.mktemp("obs-catalog") / "cat")


def _sql(catalog: Catalog, body: str = "exceedance(21.0)") -> str:
    return f"SELECT {body} FROM CATALOG '{catalog.root}'"


# ---------------------------------------------------------------------------
# Registry primitives.
# ---------------------------------------------------------------------------
class TestRegistryPrimitives:
    def test_counter_inc_and_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "help text")
        counter.inc()
        counter.inc(2.5)
        counter.inc(outcome="hit")
        assert counter.value() == 3.5
        assert counter.value(outcome="hit") == 1.0
        assert counter.total() == 4.5

    def test_counter_cannot_decrease(self):
        counter = MetricsRegistry().counter("t_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("t_bytes")
        gauge.set(100.0)
        gauge.inc(-25.0)
        assert gauge.value() == 75.0

    def test_histogram_quantiles_bracket_observations(self):
        histogram = MetricsRegistry().histogram(
            "t_seconds", buckets=(0.001, 0.01, 0.1, 1.0)
        )
        for _ in range(100):
            histogram.observe(0.05)
        assert histogram.count() == 100
        p50 = histogram.quantile(0.5)
        # Linear interpolation inside the (0.01, 0.1] bucket.
        assert 0.01 <= p50 <= 0.1

    def test_histogram_empty_quantile_is_nan(self):
        histogram = MetricsRegistry().histogram("t_seconds")
        assert math.isnan(histogram.quantile(0.5))

    def test_histogram_snapshot_converts_nan_to_none(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_seconds")
        histogram.observe(float("nan"))  # lands in a bucket; count=1
        histogram.observe(0.01)
        snap = registry.snapshot()["t_seconds"]
        for sample in snap["values"].values():
            for quantile in ("p50", "p95", "p99"):
                value = sample[quantile]
                assert value is None or isinstance(value, float)

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("t_total") is registry.counter("t_total")

    def test_type_morph_raises(self):
        registry = MetricsRegistry()
        registry.counter("t_total")
        with pytest.raises(ValueError):
            registry.gauge("t_total")
        with pytest.raises(ValueError):
            registry.histogram("t_total")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name")
        with pytest.raises(ValueError):
            registry.counter("ok_total").inc(**{"le": "x", "0bad": "y"})

    def test_collectors_run_before_scrape_and_unregister(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("t_entries")
        calls = []

        def collect():
            calls.append(1)
            gauge.set(float(len(calls)))

        registry.register_collector(collect)
        assert registry.snapshot()["t_entries"]["values"][""] == 1.0
        registry.unregister_collector(collect)
        registry.unregister_collector(collect)  # absent: no-op
        registry.snapshot()
        assert len(calls) == 1

    def test_null_registry_accepts_everything_and_stores_nothing(self):
        registry = NullRegistry()
        assert not registry.enabled
        counter = registry.counter("t_total")
        counter.inc(5.0)
        registry.histogram("t_seconds").observe(1.0)
        registry.gauge("t_bytes").set(9.0)
        assert counter.value() == 0.0
        assert registry.snapshot() == {}
        assert registry.exposition() == ""

    def test_default_registry_is_shared(self):
        assert default_registry() is default_registry()
        assert default_registry().enabled


# ---------------------------------------------------------------------------
# Exactness under concurrency (satellite: concurrent update coverage).
# ---------------------------------------------------------------------------
class TestConcurrency:
    THREADS = 8
    PER_THREAD = 2000

    def _hammer(self, work) -> None:
        threads = [
            threading.Thread(target=work, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_loses_no_increments(self):
        counter = MetricsRegistry().counter("t_total")

        def work(index):
            label = f"worker-{index % 2}"
            for _ in range(self.PER_THREAD):
                counter.inc(worker=label)

        self._hammer(work)
        assert counter.total() == self.THREADS * self.PER_THREAD
        assert counter.value(worker="worker-0") == (
            self.THREADS // 2 * self.PER_THREAD
        )

    def test_histogram_loses_no_observations(self):
        histogram = MetricsRegistry().histogram(
            "t_seconds", buckets=(0.001, 0.01, 0.1, 1.0)
        )

        def work(index):
            value = 0.005 * (1 + index % 3)
            for _ in range(self.PER_THREAD):
                histogram.observe(value)

        self._hammer(work)
        expected = self.THREADS * self.PER_THREAD
        assert histogram.total_count() == expected
        # The exposition's +Inf bucket must agree with the count.
        registry = MetricsRegistry()
        assert histogram.count() == expected

    def test_server_stats_single_lock_consistency(self):
        stats = ServerStats()

        def work(_index):
            for _ in range(self.PER_THREAD):
                stats.increment("requests")
                stats.increment("executed")

        self._hammer(work)
        snapshot = stats.as_dict()
        assert snapshot["requests"] == self.THREADS * self.PER_THREAD
        assert snapshot["executed"] == self.THREADS * self.PER_THREAD
        assert stats.requests == snapshot["requests"]

    def test_server_stats_rejects_direct_writes(self):
        stats = ServerStats()
        with pytest.raises(AttributeError):
            stats.requests = 5
        with pytest.raises(AttributeError):
            stats.executed += 1  # the old `+=` idiom must fail loudly


# ---------------------------------------------------------------------------
# Prometheus text exposition.
# ---------------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\+Inf|-Inf|[-+0-9.e]+)$"
)


def _parse_exposition(text: str) -> dict[str, float]:
    """Every sample line as ``name{labels} -> value``; raises on garbage."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        assert match is not None, f"unparseable exposition line: {line!r}"
        name, labels, value = match.groups()
        samples[name + (labels or "")] = (
            math.inf if value == "+Inf" else float(value)
        )
    return samples


class TestExposition:
    def test_counter_gauge_histogram_render(self):
        registry = MetricsRegistry()
        registry.counter("t_total", "a counter").inc(3, kind="x")
        registry.gauge("t_bytes", "a gauge").set(12.0)
        histogram = registry.histogram(
            "t_seconds", "a histogram", buckets=(0.01, 0.1)
        )
        histogram.observe(0.05, op="q")
        text = registry.exposition()
        samples = _parse_exposition(text)
        assert samples['t_total{kind="x"}'] == 3.0
        assert samples["t_bytes"] == 12.0
        assert samples['t_seconds_bucket{op="q",le="0.01"}'] == 0.0
        assert samples['t_seconds_bucket{op="q",le="0.1"}'] == 1.0
        assert samples['t_seconds_bucket{op="q",le="+Inf"}'] == 1.0
        assert samples['t_seconds_count{op="q"}'] == 1.0
        assert samples['t_seconds_sum{op="q"}'] == pytest.approx(0.05)
        assert "# TYPE t_seconds histogram" in text
        assert "# HELP t_total a counter" in text

    def test_buckets_are_cumulative_and_agree_with_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "t_seconds", buckets=(0.001, 0.01, 0.1, 1.0)
        )
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            histogram.observe(value)
        samples = _parse_exposition(registry.exposition())
        buckets = [
            samples[f't_seconds_bucket{{le="{edge}"}}']
            for edge in ("0.001", "0.01", "0.1", "1")
        ]
        assert buckets == sorted(buckets)  # cumulative: non-decreasing
        assert samples['t_seconds_bucket{le="+Inf"}'] == 5.0
        assert samples["t_seconds_count"] == 5.0

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("t_total").inc(statement='say "hi"\nplease')
        text = registry.exposition()
        assert '\\"hi\\"' in text
        assert "\\n" in text


# ---------------------------------------------------------------------------
# Trace and slow-query log primitives.
# ---------------------------------------------------------------------------
class TestTrace:
    def test_stage_spans_are_relative_to_t0(self):
        trace = QueryTrace("SELECT 1")
        with trace.stage("parse"):
            pass
        with trace.stage("plan"):
            pass
        trace.finish()
        assert [span.name for span in trace.stages] == ["parse", "plan"]
        assert trace.stages[0].start_s <= trace.stages[1].start_s
        assert trace.elapsed() >= sum(
            span.duration_s for span in trace.stages
        )

    def test_finish_is_idempotent(self):
        trace = QueryTrace()
        first = trace.finish()
        assert trace.finish() == first
        assert trace.elapsed() == first

    def test_as_dict_caps_series_spans(self):
        trace = QueryTrace("SELECT 1")
        trace.backend = "thread"
        for index in range(MAX_SERIES_SPANS + 5):
            trace.add_series(f"s-{index:03d}", index * 1e-4, 1e-5, False)
        trace.finish()
        block = trace.as_dict()
        assert len(block["series"]) == MAX_SERIES_SPANS
        assert block["series_truncated"] == 5
        # The slowest (largest load+compute) entries are the ones kept.
        assert block["series"][0]["series"] == f"s-{MAX_SERIES_SPANS + 4:03d}"
        assert block["backend"] == "thread"
        assert block["statement"] == "SELECT 1"
        assert block["cache"] == {
            "hits": 0, "misses": MAX_SERIES_SPANS + 5,
        }

    def test_null_trace_records_nothing(self):
        with NULL_TRACE.stage("parse"):
            pass
        NULL_TRACE.add_series("s", 1.0, 1.0, True)
        assert not NULL_TRACE.enabled
        assert NULL_TRACE.stages == []
        assert NULL_TRACE.as_dict() == {}
        assert NULL_TRACE.finish() == 0.0


class TestSlowQueryLog:
    def _trace(self, statement="SELECT 1") -> QueryTrace:
        trace = QueryTrace(statement)
        with trace.stage("parse"):
            pass
        trace.finish()
        return trace

    def test_threshold_zero_records_everything(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=4)
        assert log.observe(self._trace())
        entry = log.entries()[0]
        assert entry["statement"] == "SELECT 1"
        assert entry["wall_ms"] >= 0.0
        assert "parse" in entry["stages"]

    def test_threshold_filters_and_counts(self):
        log = SlowQueryLog(threshold_ms=float("inf"))
        assert not log.observe(self._trace())
        assert log.counts() == (1, 0)
        assert log.entries() == []

    def test_ring_evicts_oldest_newest_first(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=3)
        for index in range(5):
            log.observe(self._trace(f"q-{index}"))
        statements = [entry["statement"] for entry in log.entries()]
        assert statements == ["q-4", "q-3", "q-2"]
        assert log.entries(limit=1)[0]["statement"] == "q-4"
        assert log.counts() == (5, 5)

    def test_extra_fields_land_in_record(self):
        log = SlowQueryLog(threshold_ms=0.0)
        log.observe(self._trace(), extra={"segments_pruned": 7})
        assert log.entries()[0]["segments_pruned"] == 7

    def test_default_threshold(self):
        assert SlowQueryLog().threshold_ms == DEFAULT_SLOW_QUERY_MS


# ---------------------------------------------------------------------------
# Service-level tracing: the 10% stage-sum acceptance criterion.
# ---------------------------------------------------------------------------
class TestServiceTracing:
    @pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
    def test_stage_sum_within_ten_percent_of_wall(self, catalog, backend):
        with CatalogQueryService(
            catalog, backend=backend, max_workers=2
        ) as service:
            result = service.execute(_sql(catalog))
        trace = result.trace
        assert trace is not None
        block = trace.as_dict()
        stage_sum = sum(span["ms"] for span in block["stages"])
        wall = block["wall_ms"]
        assert wall > 0
        # Contiguous top-level spans: their sum approximates the wall.
        assert stage_sum <= wall * 1.01
        assert stage_sum >= wall * 0.90, (
            f"stages cover only {stage_sum / wall:.1%} of wall on "
            f"{backend}: {block['stages']}"
        )
        names = {span["name"] for span in block["stages"]}
        assert {"parse", "plan", "fan_out", "finalize"} <= names
        assert block["backend"] == backend
        assert block["statement"] == _sql(catalog)

    @pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
    def test_worker_spans_cover_every_series(self, catalog, backend):
        with CatalogQueryService(
            catalog, backend=backend, max_workers=2
        ) as service:
            result = service.execute(_sql(catalog))
        spans = {entry[0]: entry for entry in result.trace.series}
        assert set(spans) == set(result.matched)
        for _series_id, load_s, compute_s, _hit in spans.values():
            assert load_s >= 0.0
            assert compute_s >= 0.0

    def test_warm_query_reports_cache_hits(self, catalog):
        with CatalogQueryService(catalog, backend="sequential") as service:
            service.execute(_sql(catalog))
            result = service.execute(_sql(catalog))
        trace = result.trace
        assert trace.cache_hits == len(result.matched)
        assert trace.cache_misses == 0

    def test_approx_query_traces_compute_stage(self, catalog):
        with CatalogQueryService(catalog, backend="sequential") as service:
            result = service.execute(
                _sql(catalog, "APPROX exceedance(21.0)")
            )
        names = {span["name"] for span in result.trace.as_dict()["stages"]}
        assert "compute" in names
        assert "finalize" in names

    def test_null_registry_disables_tracing(self, catalog):
        with CatalogQueryService(
            catalog, backend="sequential", registry=NullRegistry()
        ) as service:
            result = service.execute(_sql(catalog))
        assert result.trace is None
        assert len(result.results) == len(result.matched)

    def test_caller_supplied_trace_is_not_finished(self, catalog):
        trace = QueryTrace()
        with CatalogQueryService(catalog, backend="sequential") as service:
            result = service.execute(_sql(catalog), trace=trace)
        assert result.trace is trace
        assert trace._wall_s is None  # caller owns the wall clock
        trace.finish()

    def test_statement_text_reconstruction_round_trips(self, catalog):
        statements = [
            _sql(catalog),
            _sql(catalog, "threshold(0.4)") + " TOP 2",
            _sql(catalog) + " SERIES 'sensor-*' WHERE t BETWEEN 2 AND 9",
            _sql(catalog, "APPROX expected_value") + " WHERE t >= 3",
            _sql(catalog, "expected_value") + " WHERE t <= 7",
        ]
        for statement in statements:
            query = parse_select_query(statement)
            assert parse_select_query(_statement_text(query)) == query


# ---------------------------------------------------------------------------
# Service-level metrics and slow log.
# ---------------------------------------------------------------------------
class TestServiceMetrics:
    def test_query_counters_and_histograms(self, catalog):
        registry = MetricsRegistry()
        with CatalogQueryService(
            catalog, backend="sequential", registry=registry
        ) as service:
            service.execute(_sql(catalog))
            service.execute(_sql(catalog, "APPROX exceedance(21.0)"))
            snapshot = registry.snapshot()
        queries = snapshot["repro_queries_total"]["values"]
        assert queries['{aggregate="exceedance",mode="exact"}'] == 1.0
        assert queries['{aggregate="exceedance",mode="approx"}'] == 1.0
        latency = snapshot["repro_query_seconds"]["values"]
        assert latency['{aggregate="exceedance"}']["count"] == 2
        tasks = snapshot["repro_backend_tasks_total"]["values"]
        assert tasks['{backend="sequential"}'] == float(
            len(catalog.list_series())
        )
        cache = snapshot["repro_cache_misses"]["values"]
        assert cache['{scope="service"}'] == float(
            len(catalog.list_series())
        )

    def test_cache_collector_unregistered_on_close(self, catalog):
        registry = MetricsRegistry()
        service = CatalogQueryService(
            catalog, backend="sequential", registry=registry
        )
        service.execute(_sql(catalog))
        before = registry.snapshot()["repro_cache_misses"]["values"]
        service.close()
        # A scrape after close still renders the last collected values
        # but no longer samples the dead cache.
        after = registry.snapshot()["repro_cache_misses"]["values"]
        assert after == before

    def test_slow_log_records_with_stage_breakdown(self, catalog):
        with CatalogQueryService(
            catalog, backend="sequential", slow_query_ms=0.0
        ) as service:
            service.execute(_sql(catalog))
            entries = service.slow_log.entries()
        assert entries
        entry = entries[0]
        assert entry["statement"] == _sql(catalog)
        assert "fan_out" in entry["stages"]
        assert entry["segments_scanned"] >= 1  # pruning extras merged in

    def test_execution_stats_compat_shim_survives(self, catalog):
        with CatalogQueryService(catalog, backend="sequential") as service:
            service.execute(_sql(catalog))
            stats = service.execution_stats()
        assert stats["queries"] == 1
        assert set(stats) >= {
            "queries", "approx_queries", "segments_scanned",
            "segments_pruned", "series_skipped",
        }

    def test_concurrent_queries_lose_no_counts(self, catalog):
        """N threads × K statements: every ledger stays exact."""
        threads_n, per_thread = 6, 4
        registry = MetricsRegistry()
        with CatalogQueryService(
            catalog, backend="thread", max_workers=4, registry=registry
        ) as service:

            def work():
                for _ in range(per_thread):
                    service.execute(_sql(catalog))

            workers = [
                threading.Thread(target=work) for _ in range(threads_n)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            stats = service.execution_stats()
            counter = registry.counter("repro_queries_total")
            histogram = registry.histogram("repro_query_seconds")
            observed, recorded = service.slow_log.counts()
        executed = threads_n * per_thread
        assert stats["queries"] == executed
        assert counter.total() == executed
        assert histogram.total_count() == executed
        assert observed == executed

    def test_process_backend_counts_are_exact(self, catalog):
        registry = MetricsRegistry()
        with CatalogQueryService(
            catalog, backend="process", max_workers=2, registry=registry
        ) as service:
            for _ in range(3):
                service.execute(_sql(catalog))
            stats = service.execution_stats()
            tasks = registry.counter("repro_backend_tasks_total")
        assert stats["queries"] == 3
        assert tasks.value(backend="process") == float(
            3 * len(catalog.list_series())
        )


# ---------------------------------------------------------------------------
# Wire surfaces: {"op": "metrics"}, {"op": "slowlog"}, trace over TCP.
# ---------------------------------------------------------------------------
class TestWireSurfaces:
    @pytest.fixture()
    def served(self, catalog):
        server = QueryServer(
            catalog.root, port=0, max_inflight=4, slow_query_ms=0.0
        )
        with ServerThread(server) as (host, port):
            with Client(host, port) as client:
                yield catalog, client

    def test_traced_query_over_wire(self, served):
        catalog, client = served
        result = client.query(_sql(catalog), trace=True)
        trace = result["trace"]
        names = [span["name"] for span in trace["stages"]]
        assert "serialize" in names
        stage_sum = sum(span["ms"] for span in trace["stages"])
        assert stage_sum >= trace["wall_ms"] * 0.90
        assert trace["statement"] == _sql(catalog)

    def test_untraced_query_has_no_trace_block(self, served):
        catalog, client = served
        result = client.query(_sql(catalog))
        assert "trace" not in result

    def test_metrics_op_serves_parseable_prometheus_text(self, served):
        catalog, client = served
        client.query(_sql(catalog))
        client.query(_sql(catalog, "threshold(0.4)"))
        payload = client.metrics()
        assert "kind" not in payload
        samples = _parse_exposition(payload["text"])
        # A latency histogram per aggregate kind, plus server gauges.
        assert samples['repro_query_seconds_count{aggregate="exceedance"}'] >= 1
        assert samples['repro_query_seconds_count{aggregate="threshold"}'] >= 1
        assert samples["repro_server_executed"] >= 2
        snapshot = payload["metrics"]
        assert snapshot["repro_query_seconds"]["type"] == "histogram"

    def test_slowlog_op_round_trips(self, served):
        catalog, client = served
        client.query(_sql(catalog))
        payload = client.slowlog(limit=5)
        assert payload["threshold_ms"] == 0.0
        assert payload["recorded"] >= 1
        entry = payload["entries"][0]
        # Untraced statements reach the service already parsed, so the
        # slow log keeps a reconstruction — re-runnable, parse-equal.
        assert parse_select_query(entry["statement"]) == parse_select_query(
            _sql(catalog)
        )
        assert "stages" in entry

    def test_stats_op_strips_kind_and_stays_consistent(self, served):
        catalog, client = served
        client.query(_sql(catalog))
        stats = client.stats()
        assert "kind" not in stats
        assert stats["executed"] >= 1
        assert stats["requests"] >= stats["executed"]
