"""Property-based round-trip guarantees for the persistent store.

Three invariants the store's contract promises, checked over generated
inputs rather than a handful of fixtures:

* any valid probabilistic view survives ``save_view_npz`` →
  ``load_view_npz`` with bit-identical columns (float64 in, float64 out);
* any storable density series survives its ``.npz`` round trip the same
  way, for both families and with or without the exact-variance column;
* a catalog series' stored state is a pure function of the *values* fed,
  not of how the feed was partitioned into micro-batches — chunked
  ``Catalog.append`` splits produce bit-identical segments-concatenated
  columns, resume state, and tuple counts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.prob_view import ProbabilisticView
from repro.metrics.base import DensitySeries
from repro.store import Catalog
from repro.store.binary import (
    load_density_series_npz,
    load_view_npz,
    save_density_series_npz,
    save_view_npz,
)
from repro.view.omega import OmegaGrid

# Every example writes real files; keep the per-example budget modest and
# silence the fixture-reuse health check (tmp_path is per-test, so examples
# share one directory — file names are uniquified below).
_SETTINGS = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

_finite = dict(allow_nan=False, allow_infinity=False, width=64)

_LABELS = st.text(
    alphabet="abλ μroom-0 ",
    min_size=0,
    max_size=8,
)


@st.composite
def view_columns(draw):
    """Parallel (t, low, high, probability, label) arrays of a valid view.

    Times may repeat (mutually exclusive alternatives), ranges are
    well-ordered, and each time's probability mass stays safely below 1.
    """
    group_count = draw(st.integers(min_value=0, max_value=5))
    t, low, high, probability, labels = [], [], [], [], []
    next_time = 0
    for _ in range(group_count):
        next_time += draw(st.integers(min_value=1, max_value=40))
        k = draw(st.integers(min_value=1, max_value=4))
        raw = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0, **_finite),
                min_size=k, max_size=k,
            )
        )
        mass = draw(st.floats(min_value=0.0, max_value=0.98, **_finite))
        total = sum(raw)
        # A near-zero total would overflow the normalisation; such groups
        # simply carry (numerically) no mass.
        scale = mass / total if total > 1e-6 else 0.0
        base = draw(st.floats(min_value=-1e6, max_value=1e6, **_finite))
        for index in range(k):
            width = draw(st.floats(min_value=1e-3, max_value=1e3, **_finite))
            t.append(next_time)
            low.append(base)
            high.append(base + width)
            base += width
            probability.append(raw[index] * scale)
            labels.append(draw(_LABELS))
    return (
        np.array(t, dtype=np.int64),
        np.array(low, dtype=float),
        np.array(high, dtype=float),
        np.array(probability, dtype=float),
        labels,
    )


@st.composite
def density_columns(draw):
    """Columns of a storable (homogeneous-family) density series."""
    count = draw(st.integers(min_value=0, max_value=8))
    t = np.cumsum(
        np.array(
            draw(st.lists(st.integers(min_value=1, max_value=30),
                          min_size=count, max_size=count)),
            dtype=np.int64,
        )
    )
    mean = np.array(
        draw(st.lists(st.floats(min_value=-1e5, max_value=1e5, **_finite),
                      min_size=count, max_size=count))
    )
    sigma = np.array(
        draw(st.lists(st.floats(min_value=1e-6, max_value=1e3, **_finite),
                      min_size=count, max_size=count))
    )
    family = draw(st.sampled_from(["gaussian", "uniform"]))
    with_variance = family == "gaussian" and draw(st.booleans())
    variance = sigma**2 if with_variance else None
    return t, mean, sigma, mean - 3 * sigma, mean + 3 * sigma, family, variance


_counter = iter(range(10**9))


def _fresh_path(tmp_path, stem: str):
    return tmp_path / f"{stem}-{next(_counter)}.npz"


class TestViewRoundTrip:
    @settings(max_examples=40, **_SETTINGS)
    @given(columns=view_columns())
    def test_save_load_bit_identical(self, tmp_path, columns):
        t, low, high, probability, labels = columns
        view = ProbabilisticView.from_columns(
            "prop", t, low, high, probability, labels
        )
        path = _fresh_path(tmp_path, "view")
        save_view_npz(view, path)
        loaded = load_view_npz(path, name="prop")
        original, restored = view.columns, loaded.columns
        np.testing.assert_array_equal(restored.t, original.t)
        np.testing.assert_array_equal(restored.low, original.low)
        np.testing.assert_array_equal(restored.high, original.high)
        np.testing.assert_array_equal(
            restored.probability, original.probability
        )
        np.testing.assert_array_equal(
            restored.label_code, original.label_code
        )
        assert restored.labels == original.labels
        # Equality of derived per-tuple objects, not just raw columns.
        assert list(loaded) == list(view)


class TestDensityRoundTrip:
    @settings(max_examples=40, **_SETTINGS)
    @given(columns=density_columns())
    def test_save_load_bit_identical(self, tmp_path, columns):
        t, mean, sigma, lower, upper, family, variance = columns
        series = DensitySeries.from_columns(
            t, mean, sigma, lower, upper, family=family, variance=variance
        )
        path = _fresh_path(tmp_path, "density")
        save_density_series_npz(series, path)
        loaded = load_density_series_npz(path)
        np.testing.assert_array_equal(loaded.times, series.times)
        np.testing.assert_array_equal(loaded.means, series.means)
        np.testing.assert_array_equal(
            loaded.volatilities, series.volatilities
        )
        np.testing.assert_array_equal(loaded.lowers, series.lowers)
        np.testing.assert_array_equal(loaded.uppers, series.uppers)
        if variance is not None:
            np.testing.assert_array_equal(loaded.variances, series.variances)
        if len(series):
            assert type(loaded[0].distribution) is type(series[0].distribution)


H = 8
GRID = OmegaGrid(delta=0.5, n=4)


@st.composite
def walk_and_partition(draw):
    """A value stream plus an arbitrary micro-batch partition of it."""
    length = draw(st.integers(min_value=H + 2, max_value=40))
    steps = draw(
        st.lists(st.floats(min_value=-0.5, max_value=0.5, **_finite),
                 min_size=length, max_size=length)
    )
    values = 20.0 + np.cumsum(np.array(steps))
    cuts, position = [], 0
    while position < length:
        size = draw(st.integers(min_value=1, max_value=length - position))
        cuts.append(size)
        position += size
    return values, cuts


class TestAppendPartitionInvariance:
    @settings(max_examples=15, **_SETTINGS)
    @given(data=walk_and_partition())
    def test_chunking_never_changes_stored_state(self, tmp_path, data):
        values, cuts = data
        tag = next(_counter)
        whole = Catalog(tmp_path / f"whole-{tag}")
        chunked = Catalog(tmp_path / f"chunked-{tag}")
        for catalog in (whole, chunked):
            catalog.create_series(
                "s", metric="variable_threshold", H=H, grid=GRID
            )
        whole.append("s", values)
        start = 0
        for size in cuts:
            chunked.append("s", values[start : start + size])
            start += size

        left, right = whole.series("s"), chunked.series("s")
        assert left.next_t == right.next_t == values.size
        assert left.tuple_count == right.tuple_count
        cols_left, cols_right = left.view().columns, right.view().columns
        np.testing.assert_array_equal(cols_right.t, cols_left.t)
        np.testing.assert_array_equal(cols_right.low, cols_left.low)
        np.testing.assert_array_equal(cols_right.high, cols_left.high)
        np.testing.assert_array_equal(
            cols_right.probability, cols_left.probability
        )
        assert cols_right.labels == cols_left.labels
        # Resume state is partition-independent too: both pipelines would
        # continue from the identical window.
        reopened_left = Catalog(whole.root).series("s")
        reopened_right = Catalog(chunked.root).series("s")
        np.testing.assert_array_equal(
            reopened_left._meta["window"], reopened_right._meta["window"]
        )


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
