"""Tests for the Omega-view builder (eq. 9) and its cached path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.gaussian import Gaussian
from repro.distributions.uniform import Uniform
from repro.exceptions import InvalidParameterError
from repro.metrics.base import DensityForecast, DensitySeries
from repro.view.builder import ViewBuilder
from repro.view.omega import OmegaGrid, OmegaRange
from repro.view.sigma_cache import SigmaCache


def _gaussian_forecast(t=0, mean=10.0, sigma=1.0):
    return DensityForecast(
        t=t, mean=mean, distribution=Gaussian(mean, sigma**2),
        lower=mean - 3 * sigma, upper=mean + 3 * sigma, volatility=sigma,
    )


class TestNaivePath:
    def test_row_matches_eq9(self):
        """rho_lambda = P(edge_{lambda+1}) - P(edge_lambda)."""
        grid = OmegaGrid(delta=1.0, n=4)
        forecast = _gaussian_forecast(mean=5.0, sigma=2.0)
        row = ViewBuilder(grid).build_row(forecast)
        g = forecast.distribution
        expected = [
            g.prob(3.0, 4.0), g.prob(4.0, 5.0), g.prob(5.0, 6.0), g.prob(6.0, 7.0)
        ]
        np.testing.assert_allclose(row.probabilities, expected, atol=1e-12)

    def test_probabilities_sum_below_one(self):
        grid = OmegaGrid(delta=0.5, n=4)  # Narrow grid truncates tails.
        row = ViewBuilder(grid).build_row(_gaussian_forecast(sigma=3.0))
        assert 0.0 < row.total_mass < 1.0

    def test_wide_grid_captures_nearly_all_mass(self):
        grid = OmegaGrid(delta=1.0, n=12)  # +/- 6 sigma.
        row = ViewBuilder(grid).build_row(_gaussian_forecast(sigma=1.0))
        assert row.total_mass == pytest.approx(1.0, abs=1e-6)

    def test_symmetric_distribution_symmetric_row(self):
        grid = OmegaGrid(delta=0.5, n=6)
        row = ViewBuilder(grid).build_row(_gaussian_forecast(mean=0.0, sigma=1.0))
        np.testing.assert_allclose(
            row.probabilities, row.probabilities[::-1], atol=1e-12
        )

    def test_uniform_forecast_supported(self):
        grid = OmegaGrid(delta=0.5, n=4)
        forecast = DensityForecast(
            t=0, mean=2.0, distribution=Uniform(1.0, 3.0),
            lower=1.0, upper=3.0, volatility=Uniform(1.0, 3.0).std(),
        )
        row = ViewBuilder(grid).build_row(forecast)
        assert row.total_mass == pytest.approx(1.0, abs=1e-12)

    def test_rows_for_series(self, gaussian_forecasts):
        rows = ViewBuilder(OmegaGrid(0.5, 6)).build_rows(gaussian_forecasts)
        assert len(rows) == len(gaussian_forecasts)
        assert [r.t for r in rows] == list(gaussian_forecasts.times)


class TestCachedPath:
    def test_cache_grid_mismatch_rejected(self):
        cache = SigmaCache(OmegaGrid(0.5, 4), 0.5, 5.0, distance_constraint=0.05)
        with pytest.raises(InvalidParameterError):
            ViewBuilder(OmegaGrid(0.5, 6), cache)

    def test_cached_rows_close_to_naive(self, gaussian_forecasts):
        grid = OmegaGrid(delta=0.5, n=6)
        naive = ViewBuilder(grid)
        cached = naive.with_cache_for(gaussian_forecasts, distance_constraint=0.005)
        for forecast in gaussian_forecasts:
            exact = naive.build_row(forecast).probabilities
            approx = cached.build_row(forecast).probabilities
            # A tight Hellinger constraint implies close probability rows.
            np.testing.assert_allclose(approx, exact, atol=0.02)

    def test_cached_row_errors_shrink_with_constraint(self, gaussian_forecasts):
        grid = OmegaGrid(delta=0.5, n=6)
        naive = ViewBuilder(grid)

        def max_error(constraint):
            cached = naive.with_cache_for(
                gaussian_forecasts, distance_constraint=constraint
            )
            worst = 0.0
            for forecast in gaussian_forecasts:
                exact = naive.build_row(forecast).probabilities
                approx = cached.build_row(forecast).probabilities
                worst = max(worst, float(np.max(np.abs(approx - exact))))
            return worst

        assert max_error(0.001) <= max_error(0.1) + 1e-12

    def test_non_gaussian_forecast_falls_back_to_naive(self):
        grid = OmegaGrid(delta=0.5, n=4)
        forecasts = DensitySeries([_gaussian_forecast(t=0)])
        builder = ViewBuilder(grid).with_cache_for(
            forecasts, distance_constraint=0.05
        )
        uniform_forecast = DensityForecast(
            t=1, mean=2.0, distribution=Uniform(1.0, 3.0),
            lower=1.0, upper=3.0, volatility=Uniform(1.0, 3.0).std(),
        )
        row = builder.build_row(uniform_forecast)
        assert row.total_mass == pytest.approx(1.0, abs=1e-12)

    def test_with_cache_for_sizes_from_forecasts(self, gaussian_forecasts):
        grid = OmegaGrid(delta=0.5, n=6)
        builder = ViewBuilder(grid).with_cache_for(
            gaussian_forecasts, distance_constraint=0.01
        )
        sigmas = gaussian_forecasts.volatilities
        assert builder.cache.min_sigma == pytest.approx(float(sigmas.min()))
        assert builder.cache.max_sigma == pytest.approx(float(sigmas.max()))


class TestCustomRanges:
    def test_room_probabilities(self):
        """The Fig. 1 scenario: probability of each room for a position."""
        forecast = _gaussian_forecast(mean=1.0, sigma=1.0)
        rooms = [
            OmegaRange(-2.0, 0.0, label="room 1"),
            OmegaRange(0.0, 2.0, label="room 2"),
            OmegaRange(2.0, 4.0, label="room 3"),
        ]
        probabilities = ViewBuilder.probabilities_for_ranges(forecast, rooms)
        assert probabilities["room 2"] > probabilities["room 1"]
        assert probabilities["room 2"] > probabilities["room 3"]
        assert sum(probabilities.values()) <= 1.0 + 1e-9

    def test_unlabelled_ranges_get_indices(self):
        forecast = _gaussian_forecast()
        out = ViewBuilder.probabilities_for_ranges(
            forecast, [OmegaRange(9.0, 10.0), OmegaRange(10.0, 11.0)]
        )
        assert set(out) == {"omega_0", "omega_1"}

    def test_iter_rows_lazy_equivalent(self, gaussian_forecasts):
        builder = ViewBuilder(OmegaGrid(0.5, 4))
        eager = builder.build_rows(gaussian_forecasts)
        lazy = list(builder.iter_rows(gaussian_forecasts))
        assert len(eager) == len(lazy)
        for a, b in zip(eager, lazy):
            np.testing.assert_array_equal(a.probabilities, b.probabilities)
