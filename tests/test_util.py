"""Tests for validation helpers, RNG plumbing and table rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError, InvalidParameterError
from repro.util.rng import DEFAULT_SEED, ensure_rng
from repro.util.tables import format_table, rows_from_dicts
from repro.util.validation import (
    require_finite_array,
    require_in_range,
    require_positive,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive("x", 2.5) == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(InvalidParameterError, match="x"):
            require_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert require_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative_even_when_not_strict(self):
        with pytest.raises(InvalidParameterError):
            require_positive("x", -1.0, strict=False)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(InvalidParameterError):
            require_positive("x", float("nan"))
        with pytest.raises(InvalidParameterError):
            require_positive("x", float("inf"))


class TestRequireInRange:
    def test_inclusive_bounds(self):
        assert require_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert require_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_exclusive_bounds_reject_edges(self):
        with pytest.raises(InvalidParameterError):
            require_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(InvalidParameterError, match=r"\[0.*1"):
            require_in_range("x", 2.0, 0.0, 1.0)


class TestRequireFiniteArray:
    def test_coerces_lists(self):
        out = require_finite_array("x", [1, 2, 3])
        assert out.dtype == float
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_2d(self):
        with pytest.raises(DataError, match="one-dimensional"):
            require_finite_array("x", np.zeros((2, 2)))

    def test_rejects_short(self):
        with pytest.raises(DataError, match="at least 3"):
            require_finite_array("x", [1.0, 2.0], min_len=3)

    def test_rejects_nan(self):
        with pytest.raises(DataError, match="non-finite"):
            require_finite_array("x", [1.0, float("nan")])


class TestEnsureRng:
    def test_none_uses_default_seed(self):
        a = ensure_rng(None).standard_normal(4)
        b = np.random.default_rng(DEFAULT_SEED).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_int_seed(self):
        a = ensure_rng(7).standard_normal(4)
        b = np.random.default_rng(7).standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(1)
        assert ensure_rng(generator) is generator


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "---" not in lines[0]
        assert len(lines) == 4

    def test_title_renders_with_underline(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "=" * len("My Table")

    def test_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="2 cells"):
            format_table(["a"], [[1, 2]])

    def test_float_format_respected(self):
        text = format_table(["v"], [[3.14159]], float_format=".2f")
        assert "3.14" in text and "3.142" not in text


class TestRowsFromDicts:
    def test_infers_headers_from_first_record(self):
        headers, rows = rows_from_dicts([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert headers == ["a", "b"]
        assert rows == [[1, 2], [3, 4]]

    def test_missing_keys_render_empty(self):
        headers, rows = rows_from_dicts([{"a": 1}], headers=["a", "b"])
        assert rows == [[1, ""]]

    def test_empty_records(self):
        headers, rows = rows_from_dicts([])
        assert headers == [] and rows == []
