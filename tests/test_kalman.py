"""Tests for the local-level Kalman filter and its EM estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, NotFittedError
from repro.timeseries.kalman import FilterResult, KalmanFilter, KalmanParams


def _simulate_local_level(n, state_std, obs_std, rng):
    level = np.cumsum(rng.normal(0.0, state_std, size=n))
    observed = level + rng.normal(0.0, obs_std, size=n)
    return level, observed


class TestParams:
    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            KalmanParams(state_variance=-1.0).validate()
        with pytest.raises(InvalidParameterError):
            KalmanParams(initial_variance=0.0).validate()
        KalmanParams().validate()  # Defaults are valid.


class TestFilter:
    def test_requires_params(self):
        with pytest.raises(NotFittedError):
            KalmanFilter().filter(np.zeros(10))

    def test_output_shapes(self, rng):
        _level, observed = _simulate_local_level(50, 0.1, 1.0, rng)
        result = KalmanFilter().filter(observed, KalmanParams())
        assert isinstance(result, FilterResult)
        for array in (
            result.predicted_mean, result.predicted_variance,
            result.filtered_mean, result.filtered_variance,
        ):
            assert array.shape == (50,)

    def test_filtered_variance_below_predicted(self, rng):
        """Conditioning on the observation can only reduce uncertainty."""
        _level, observed = _simulate_local_level(100, 0.2, 1.0, rng)
        result = KalmanFilter().filter(observed, KalmanParams())
        assert np.all(result.filtered_variance <= result.predicted_variance + 1e-12)

    def test_zero_obs_noise_tracks_observations(self, rng):
        _level, observed = _simulate_local_level(50, 0.5, 0.0, rng)
        params = KalmanParams(state_variance=0.25, obs_variance=1e-10)
        result = KalmanFilter().filter(observed, params)
        np.testing.assert_allclose(result.filtered_mean, observed, atol=1e-3)

    def test_filter_reduces_noise_vs_raw(self, rng):
        level, observed = _simulate_local_level(800, 0.05, 1.0, rng)
        params = KalmanParams(state_variance=0.0025, obs_variance=1.0,
                              initial_mean=observed[0])
        result = KalmanFilter().filter(observed, params)
        raw_error = float(np.mean((observed - level) ** 2))
        filtered_error = float(np.mean((result.filtered_mean - level) ** 2))
        assert filtered_error < raw_error * 0.5


class TestSmoother:
    def test_smoother_at_least_as_accurate_as_filter(self, rng):
        level, observed = _simulate_local_level(600, 0.1, 1.0, rng)
        params = KalmanParams(state_variance=0.01, obs_variance=1.0,
                              initial_mean=observed[0])
        kf = KalmanFilter()
        forward = kf.filter(observed, params)
        smoothed_mean, smoothed_variance, _lag1 = kf.smooth(observed, params)
        filter_error = float(np.mean((forward.filtered_mean - level) ** 2))
        smooth_error = float(np.mean((smoothed_mean - level) ** 2))
        assert smooth_error <= filter_error * 1.05
        assert np.all(smoothed_variance <= forward.filtered_variance + 1e-9)


class TestEM:
    def test_em_recovers_variance_ratio(self, rng):
        _level, observed = _simulate_local_level(3000, 0.1, 1.0, rng)
        kf = KalmanFilter().fit_em(observed, max_iter=60)
        ratio = kf.params_.obs_variance / kf.params_.state_variance
        # True ratio is 1.0 / 0.01 = 100; EM identification is coarse but the
        # order of magnitude must be right.
        assert 20 < ratio < 500

    def test_em_monotone_likelihood(self, rng):
        _level, observed = _simulate_local_level(300, 0.2, 0.8, rng)
        kf = KalmanFilter()
        # Run EM manually for a few iterations tracking the likelihood.
        kf.fit_em(observed, max_iter=1)
        first = kf.result_.loglik
        kf.fit_em(observed, max_iter=20)
        final = kf.result_.loglik
        assert final >= first - 1e-6

    def test_em_stops_within_max_iter(self, rng):
        _level, observed = _simulate_local_level(200, 0.1, 1.0, rng)
        kf = KalmanFilter().fit_em(observed, max_iter=5)
        assert kf.em_iterations_ <= 5

    def test_max_iter_validation(self, rng):
        with pytest.raises(InvalidParameterError):
            KalmanFilter().fit_em(np.zeros(10) + np.arange(10), max_iter=0)


class TestPrediction:
    def test_predict_next_extends_filtered_state(self, rng):
        _level, observed = _simulate_local_level(200, 0.1, 0.5, rng)
        kf = KalmanFilter().fit_em(observed, max_iter=20)
        prediction = kf.predict_next()
        assert prediction == pytest.approx(kf.result_.filtered_mean[-1], rel=1e-9)

    def test_predict_with_c_constants(self, rng):
        _level, observed = _simulate_local_level(200, 0.1, 0.5, rng)
        kf = KalmanFilter().fit_em(observed, c1=0.9, c2=1.0, max_iter=10)
        assert kf.predict_next() == pytest.approx(
            0.9 * kf.result_.filtered_mean[-1], rel=1e-9
        )

    def test_fitted_means_alignment(self, rng):
        _level, observed = _simulate_local_level(100, 0.1, 0.5, rng)
        kf = KalmanFilter().fit_em(observed, max_iter=10)
        assert kf.fitted_means().shape == observed.shape

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            KalmanFilter().predict_next()
