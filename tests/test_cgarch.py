"""Tests for the C-GARCH online cleaning metric (paper Section V)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.errors import inject_errors
from repro.data.synthetic import campus_temperature
from repro.exceptions import InvalidParameterError
from repro.metrics.cgarch import CGARCHMetric, CGARCHReport
from repro.timeseries.series import TimeSeries


@pytest.fixture(scope="module")
def corrupted():
    """A small campus slice with known injected spikes."""
    clean = campus_temperature(500, rng=3)
    injection = inject_errors(
        clean, count=6, magnitude=10.0, rng=4, protect_prefix=61
    )
    return clean, injection


class TestConstruction:
    def test_oc_max_validation(self):
        with pytest.raises(InvalidParameterError):
            CGARCHMetric(oc_max=1)

    def test_sv_max_validation(self):
        with pytest.raises(InvalidParameterError):
            CGARCHMetric(sv_max=-0.5)

    def test_min_window_accounts_for_oc_max(self):
        metric = CGARCHMetric(oc_max=20)
        assert metric.min_window >= 21


class TestDetection:
    def test_detects_isolated_spikes(self, corrupted):
        _clean, injection = corrupted
        metric = CGARCHMetric(oc_max=8)
        _forecasts, report = metric.run_with_report(injection.series, H=60)
        assert report.capture_rate(injection.error_indices) >= 0.8

    def test_cleaned_values_replace_spikes(self, corrupted):
        clean, injection = corrupted
        metric = CGARCHMetric(oc_max=8)
        _forecasts, report = metric.run_with_report(injection.series, H=60)
        caught = set(report.flagged) & set(injection.error_indices.tolist())
        assert caught  # At least some true spikes were flagged.
        for index in caught:
            # The replacement must be far closer to the clean value than
            # the spike was.
            spike_error = abs(injection.series[index] - clean[index])
            cleaned_error = abs(report.cleaned[index] - clean[index])
            assert cleaned_error < spike_error * 0.5

    def test_volatility_stays_bounded_after_spikes(self, corrupted):
        """The C-GARCH promise: no Fig. 5(a) volatility blow-up."""
        clean, injection = corrupted
        metric = CGARCHMetric(oc_max=8)
        forecasts, _report = metric.run_with_report(injection.series, H=60)
        widths = np.array([f.upper - f.lower for f in forecasts])
        spike_scale = float(np.std(injection.series.values))
        assert np.max(widths) < 6.0 * spike_scale

    def test_clean_series_mostly_unflagged(self):
        clean = campus_temperature(400, rng=5)
        metric = CGARCHMetric(oc_max=8)
        _forecasts, report = metric.run_with_report(clean, H=60)
        # kappa=3 bounds admit ~0.3% false flags plus a few regime misses.
        assert report.n_flagged < 0.15 * (len(clean) - 60)


class TestTrendChange:
    def test_step_change_triggers_readjustment(self):
        """A genuine level shift must be recognised, not flagged forever."""
        rng = np.random.default_rng(6)
        values = np.concatenate([
            10.0 + 0.05 * rng.standard_normal(200),
            14.0 + 0.05 * rng.standard_normal(200),  # Sharp trend change.
        ])
        series = TimeSeries(values)
        oc_max = 6
        metric = CGARCHMetric(oc_max=oc_max)
        _forecasts, report = metric.run_with_report(series, H=60)
        assert len(report.trend_changes) >= 1
        first = report.trend_changes[0]
        assert 200 <= first <= 200 + 2 * oc_max
        # After re-adjustment the new level must be accepted: no flags well
        # beyond the transition.
        late_flags = [t for t in report.flagged if t > 200 + 5 * oc_max]
        assert len(late_flags) <= 5

    def test_cleaned_follows_new_level_after_trend_change(self):
        rng = np.random.default_rng(7)
        values = np.concatenate([
            5.0 + 0.02 * rng.standard_normal(150),
            9.0 + 0.02 * rng.standard_normal(150),
        ])
        series = TimeSeries(values)
        metric = CGARCHMetric(oc_max=5)
        _forecasts, report = metric.run_with_report(series, H=50)
        assert report.cleaned[-50:].mean() == pytest.approx(9.0, abs=0.5)


class TestRunContract:
    def test_run_requires_sequential_semantics(self):
        series = campus_temperature(300, rng=8)
        metric = CGARCHMetric()
        with pytest.raises(InvalidParameterError):
            metric.run(series, H=60, step=5)

    def test_run_returns_forecasts_for_every_time(self):
        series = campus_temperature(200, rng=9)
        metric = CGARCHMetric()
        forecasts = metric.run(series, H=60)
        assert len(forecasts) == 140

    def test_stop_limits_processing(self):
        series = campus_temperature(300, rng=10)
        metric = CGARCHMetric()
        forecasts, _report = metric.run_with_report(series, H=60, stop=100)
        assert len(forecasts) == 40

    def test_window_below_minimum_rejected(self):
        series = campus_temperature(100, rng=11)
        with pytest.raises(InvalidParameterError):
            CGARCHMetric(oc_max=8).run_with_report(series, H=5)

    def test_series_shorter_than_window_rejected(self):
        series = campus_temperature(50, rng=12)
        with pytest.raises(InvalidParameterError):
            CGARCHMetric().run_with_report(series, H=60)


class TestReport:
    def test_capture_rate_requires_truth(self, corrupted):
        _clean, injection = corrupted
        metric = CGARCHMetric(oc_max=8)
        _forecasts, report = metric.run_with_report(injection.series, H=60)
        with pytest.raises(InvalidParameterError):
            report.capture_rate(np.array([]))

    def test_report_fields(self, corrupted):
        _clean, injection = corrupted
        _forecasts, report = CGARCHMetric(oc_max=8).run_with_report(
            injection.series, H=60
        )
        assert isinstance(report, CGARCHReport)
        assert report.sv_max > 0.0
        assert report.cleaned.shape[0] == len(injection.series)
        assert all(isinstance(t, int) for t in report.flagged)

    def test_learn_sv_max_exposed(self):
        values = campus_temperature(300, rng=13).values
        assert CGARCHMetric.learn_sv_max(values, 8) > 0.0
