"""End-to-end guarantee tests for the view layer.

The sigma-cache's contract is that the *probability rows* it serves stay
close to the exact ones whenever the Hellinger constraint holds; these
tests measure the actual row error across whole realistic runs, tying
Theorem 1 to the quantity users consume.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.prob_view import ProbabilisticView
from repro.distributions.gaussian import Gaussian
from repro.metrics.base import DensityForecast, DensitySeries
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.view.builder import ViewBuilder
from repro.view.omega import OmegaGrid


def _forecasts_with_sigmas(sigmas: list[float]) -> DensitySeries:
    return DensitySeries([
        DensityForecast(
            t=index, mean=10.0, distribution=Gaussian(10.0, s**2),
            lower=10.0 - 3 * s, upper=10.0 + 3 * s, volatility=s,
        )
        for index, s in enumerate(sigmas)
    ])


class TestRowErrorBounds:
    def test_row_error_scales_with_constraint(self):
        """Max row error decreases monotonically as H' tightens."""
        rng = np.random.default_rng(0)
        sigmas = list(rng.uniform(0.2, 20.0, size=120))
        forecasts = _forecasts_with_sigmas(sigmas)
        grid = OmegaGrid(delta=0.5, n=8)
        naive = ViewBuilder(grid)
        exact_rows = [row.probabilities for row in naive.build_rows(forecasts)]
        errors = []
        for constraint in (0.1, 0.02, 0.002):
            cached = naive.with_cache_for(forecasts,
                                          distance_constraint=constraint)
            worst = 0.0
            for exact, forecast in zip(exact_rows, forecasts):
                approx = cached.build_row(forecast).probabilities
                worst = max(worst, float(np.max(np.abs(approx - exact))))
            errors.append(worst)
        assert errors[0] >= errors[1] >= errors[2]
        assert errors[2] < 0.01

    def test_cached_view_total_mass_valid(self, campus_series):
        """Cached probability rows still form a valid probabilistic view."""
        metric = VariableThresholdingMetric()
        forecasts = metric.run(campus_series, 40, step=8)
        grid = OmegaGrid(delta=0.25, n=20)
        builder = ViewBuilder(grid).with_cache_for(
            forecasts, distance_constraint=0.05
        )
        rows = builder.build_rows(forecasts)
        view = ProbabilisticView.from_rows("cached", rows, grid)
        for t in view.times:
            assert view.total_mass_at(t) <= 1.0 + 1e-6

    def test_memory_constrained_cache_still_valid(self):
        rng = np.random.default_rng(1)
        forecasts = _forecasts_with_sigmas(list(rng.uniform(0.5, 50.0, 60)))
        grid = OmegaGrid(delta=1.0, n=6)
        builder = ViewBuilder(grid).with_cache_for(
            forecasts, memory_constraint=8
        )
        assert len(builder.cache) <= 9
        for forecast in forecasts:
            row = builder.build_row(forecast)
            assert np.all(row.probabilities >= 0.0)
            assert row.total_mass <= 1.0 + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    sigma_low=st.floats(min_value=0.05, max_value=1.0),
    span=st.floats(min_value=1.5, max_value=200.0),
    constraint=st.floats(min_value=0.005, max_value=0.1),
    delta=st.floats(min_value=0.1, max_value=2.0),
)
def test_cached_rows_within_empirical_tolerance(sigma_low, span, constraint, delta):
    """Property: across random sigma populations and grids, cached rows
    differ from exact rows by an amount that shrinks with the constraint.

    The Hellinger bound does not translate linearly to row error, but a
    loose empirical envelope (2 * H') holds comfortably across the space
    this strategy explores and would catch any floor-lookup regression.
    """
    rng = np.random.default_rng(42)
    sigmas = list(rng.uniform(sigma_low, sigma_low * span, size=30))
    forecasts = _forecasts_with_sigmas(sigmas)
    grid = OmegaGrid(delta=delta, n=4)
    naive = ViewBuilder(grid)
    cached = naive.with_cache_for(forecasts, distance_constraint=constraint)
    for forecast in forecasts:
        exact = naive.build_row(forecast).probabilities
        approx = cached.build_row(forecast).probabilities
        assert float(np.max(np.abs(approx - exact))) <= 2.0 * constraint + 1e-9
