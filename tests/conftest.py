"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import campus_temperature, car_gps
from repro.distributions.gaussian import Gaussian
from repro.metrics.base import DensityForecast, DensitySeries
from repro.timeseries.series import TimeSeries


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; tests that need randomness share this seed."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def campus_series() -> TimeSeries:
    """A small campus-data slice shared (read-only) across the session."""
    return campus_temperature(600, rng=0)


@pytest.fixture(scope="session")
def car_series() -> TimeSeries:
    """A small car-data slice shared (read-only) across the session."""
    return car_gps(600, rng=0)


@pytest.fixture
def simple_series() -> TimeSeries:
    """A short deterministic trend + wiggle series for metric tests."""
    t = np.arange(120, dtype=float)
    values = 10.0 + 0.05 * t + np.sin(t / 5.0)
    return TimeSeries(values, name="simple")


@pytest.fixture
def gaussian_forecasts() -> DensitySeries:
    """Five hand-built Gaussian forecasts with varied volatility."""
    forecasts = []
    for index, (mean, sigma) in enumerate(
        [(10.0, 0.5), (10.5, 0.8), (11.0, 1.2), (10.8, 0.6), (10.2, 2.0)]
    ):
        forecasts.append(
            DensityForecast(
                t=60 + index,
                mean=mean,
                distribution=Gaussian(mean, sigma**2),
                lower=mean - 3 * sigma,
                upper=mean + 3 * sigma,
                volatility=sigma,
            )
        )
    return DensitySeries(forecasts)
