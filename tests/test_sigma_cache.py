"""Tests for the sigma-cache: constraints, lookup correctness, sizing."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.gaussian import Gaussian
from repro.exceptions import CacheConstraintError, InvalidParameterError
from repro.view.hellinger import hellinger_distance
from repro.view.omega import OmegaGrid
from repro.view.sigma_cache import SigmaCache


def _grid() -> OmegaGrid:
    return OmegaGrid(delta=0.1, n=10)


class TestConstruction:
    def test_requires_a_constraint(self):
        with pytest.raises(InvalidParameterError):
            SigmaCache(_grid(), 0.5, 5.0)

    def test_sigma_validation(self):
        with pytest.raises(InvalidParameterError):
            SigmaCache(_grid(), 0.0, 5.0, distance_constraint=0.01)
        with pytest.raises(InvalidParameterError):
            SigmaCache(_grid(), 5.0, 1.0, distance_constraint=0.01)

    def test_distribution_count_matches_theory(self):
        cache = SigmaCache(_grid(), 1.0, 100.0, distance_constraint=0.01)
        q = math.ceil(math.log(100.0) / math.log(cache.ratio_threshold))
        assert len(cache) == q + 1  # +1 stores the minimum itself.

    def test_memory_constraint_bounds_count(self):
        cache = SigmaCache(_grid(), 1.0, 100.0, memory_constraint=10)
        assert len(cache) <= 11

    def test_equal_sigmas_single_distribution(self):
        cache = SigmaCache(_grid(), 2.0, 2.0, distance_constraint=0.01)
        assert len(cache) == 1

    def test_conflicting_constraints_rejected(self):
        # Tight distance + tiny memory over a huge sigma span is infeasible.
        with pytest.raises(CacheConstraintError):
            SigmaCache(
                _grid(), 1.0, 1e6, distance_constraint=0.001,
                memory_constraint=2,
            )

    def test_compatible_joint_constraints_choose_distance_ratio(self):
        cache = SigmaCache(
            _grid(), 1.0, 10.0, distance_constraint=0.05,
            memory_constraint=1000,
        )
        # Memory allows far more distributions than distance requires; the
        # distance ratio (larger) should be chosen to keep the cache small.
        from repro.view.hellinger import ratio_threshold_for_distance

        assert cache.ratio_threshold == pytest.approx(
            ratio_threshold_for_distance(0.05)
        )


class TestLookup:
    def test_exact_key_row_matches_direct_computation(self):
        grid = _grid()
        cache = SigmaCache(grid, 1.0, 10.0, distance_constraint=0.01)
        sigma = float(cache.keys()[3])
        row = cache.probability_row(sigma)
        edges = grid.edges_around(0.0)
        expected = np.diff(Gaussian(0.0, sigma**2).cdf(edges))
        np.testing.assert_allclose(row, expected, atol=1e-12)

    def test_floor_semantics(self):
        """A queried sigma is served from the greatest key below it."""
        cache = SigmaCache(_grid(), 1.0, 10.0, distance_constraint=0.05)
        keys = cache.keys()
        probe = (keys[2] + keys[3]) / 2.0
        row = cache.probability_row(probe)
        expected = cache.probability_row(float(keys[2]))
        np.testing.assert_array_equal(row, expected)

    def test_below_minimum_clamps(self):
        cache = SigmaCache(_grid(), 1.0, 10.0, distance_constraint=0.05)
        row = cache.probability_row(0.5)
        expected = cache.probability_row(1.0)
        np.testing.assert_array_equal(row, expected)
        assert cache.stats.misses >= 1

    def test_sigma_validation(self):
        cache = SigmaCache(_grid(), 1.0, 10.0, distance_constraint=0.05)
        with pytest.raises(InvalidParameterError):
            cache.probability_row(0.0)

    def test_hit_statistics(self):
        cache = SigmaCache(_grid(), 1.0, 10.0, distance_constraint=0.05)
        for sigma in (1.5, 2.5, 5.0):
            cache.probability_row(sigma)
        assert cache.stats.hits == 3
        assert cache.stats.hit_rate == 1.0


class TestGuarantees:
    def test_served_distribution_within_distance_constraint(self):
        """Theorem 1 end to end: every lookup's Hellinger error <= H'."""
        constraint = 0.02
        cache = SigmaCache(_grid(), 0.3, 30.0, distance_constraint=constraint)
        keys = cache.keys()
        rng = np.random.default_rng(0)
        for sigma in rng.uniform(0.3, 30.0, size=200):
            index = np.searchsorted(keys, sigma, side="right") - 1
            served_sigma = float(keys[max(index, 0)])
            assert hellinger_distance(served_sigma, float(sigma)) <= constraint + 1e-9

    def test_guaranteed_distance_reports_chosen_bound(self):
        cache = SigmaCache(_grid(), 1.0, 50.0, distance_constraint=0.03)
        assert cache.guaranteed_distance() == pytest.approx(0.03, rel=1e-6)

    def test_logarithmic_size_growth(self):
        sizes = []
        for max_sigma in (10.0, 100.0, 1000.0, 10000.0):
            cache = SigmaCache(_grid(), 1.0, max_sigma, distance_constraint=0.01)
            sizes.append(len(cache))
        increments = np.diff(sizes)
        # Each 10x increase of Ds adds a constant number of distributions.
        assert np.all(np.abs(increments - increments[0]) <= 1)

    def test_size_bytes_scales_with_grid(self):
        small = SigmaCache(OmegaGrid(0.1, 4), 1.0, 10.0, distance_constraint=0.05)
        large = SigmaCache(OmegaGrid(0.1, 40), 1.0, 10.0, distance_constraint=0.05)
        assert large.size_bytes() > small.size_bytes()


@settings(max_examples=40, deadline=None)
@given(
    min_sigma=st.floats(min_value=1e-3, max_value=1.0),
    span=st.floats(min_value=1.0, max_value=1e4),
    constraint=st.floats(min_value=5e-3, max_value=0.2),
    probe_fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_cache_lookup_error_bounded_property(
    min_sigma, span, constraint, probe_fraction
):
    """Property: for any queried sigma in range, the approximation error of
    the served probability row is bounded by the Hellinger constraint."""
    grid = OmegaGrid(delta=0.2, n=4)
    max_sigma = min_sigma * span
    cache = SigmaCache(grid, min_sigma, max_sigma, distance_constraint=constraint)
    sigma = min_sigma + probe_fraction * (max_sigma - min_sigma)
    keys = cache.keys()
    index = np.searchsorted(keys, sigma, side="right") - 1
    served = float(keys[max(index, 0)])
    assert hellinger_distance(served, sigma) <= constraint + 1e-9
