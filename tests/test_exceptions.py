"""Tests for the exception hierarchy contract.

Callers rely on two properties: every library error is catchable as
``ReproError``, and caller-mistake errors are additionally ``ValueError``
so generic validation code works unchanged.
"""

from __future__ import annotations

import pytest

from repro.exceptions import (
    CacheConstraintError,
    DataError,
    EstimationError,
    InvalidParameterError,
    NotFittedError,
    ParseError,
    QueryError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        InvalidParameterError, EstimationError, NotFittedError, DataError,
        QueryError, ParseError, CacheConstraintError,
    ])
    def test_everything_is_a_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    @pytest.mark.parametrize("exc_type", [InvalidParameterError, DataError])
    def test_caller_mistakes_are_value_errors(self, exc_type):
        assert issubclass(exc_type, ValueError)

    def test_parse_error_is_a_query_error(self):
        assert issubclass(ParseError, QueryError)

    def test_parse_error_carries_position(self):
        error = ParseError("bad token", position=17)
        assert error.position == 17
        assert ParseError("no position").position == -1


class TestCatchability:
    def test_library_errors_caught_as_repro_error(self):
        """A representative error from each subsystem lands under ReproError."""
        from repro.distributions.gaussian import Gaussian
        from repro.timeseries.series import TimeSeries
        from repro.view.sql import parse_view_query

        for trigger in (
            lambda: Gaussian(0.0, -1.0),
            lambda: TimeSeries([]),
            lambda: parse_view_query("nonsense"),
        ):
            with pytest.raises(ReproError):
                trigger()

    def test_invalid_parameter_caught_as_value_error(self):
        from repro.view.omega import OmegaGrid

        with pytest.raises(ValueError):
            OmegaGrid(delta=-1.0, n=2)
