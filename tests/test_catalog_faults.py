"""Fault-injection and concurrency tests for the persistent catalog.

The store subsystem promises two things its unit tests never exercised:

* **Reader/writer isolation** — a reader snapshotting the catalog while a
  single writer appends must always see a *consistent* view (some durable
  prefix of the series), never a torn one.
* **Crash atomicity** — an append that dies between the segment write and
  the ``series.json`` flush leaves the catalog at its last durable state:
  reopening resumes at the recorded ``next_t``, the orphan segment is
  overwritten by the resumed append, and the recovered end state is
  bit-identical to a run that never crashed.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro.store.catalog as catalog_module
from repro.exceptions import StoreError
from repro.store import Catalog
from repro.store.binary import load_view_npz, save_view_npz
from repro.view.omega import OmegaGrid

H = 16
GRID = OmegaGrid(delta=0.5, n=4)


def _values(count: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return 20.0 + np.cumsum(rng.normal(0.0, 0.1, size=count))


def _assert_views_identical(left, right) -> None:
    cols_left, cols_right = left.columns, right.columns
    np.testing.assert_array_equal(cols_right.t, cols_left.t)
    np.testing.assert_array_equal(cols_right.low, cols_left.low)
    np.testing.assert_array_equal(cols_right.high, cols_left.high)
    np.testing.assert_array_equal(
        cols_right.probability, cols_left.probability
    )
    assert cols_right.labels == cols_left.labels


class TestConcurrentReaders:
    def test_readers_always_see_consistent_prefix(self, tmp_path):
        root = tmp_path / "cat"
        writer_catalog = Catalog(root)
        writer_catalog.create_series(
            "s", metric="variable_threshold", H=H, grid=GRID
        )
        values = _values(600)
        stop = threading.Event()
        errors: list[Exception] = []
        observed: list[int] = []

        def reader() -> None:
            # Fresh Catalog objects per read: exactly what a concurrent
            # query process would do.
            while not stop.is_set():
                try:
                    snapshot = Catalog(root, create=False).snapshot("s")
                    view = snapshot.load_view()  # Validates mass + ranges.
                    assert len(view) == snapshot.tuple_count
                    times = view.columns.times
                    if times.size:
                        # A consistent prefix: warm-up ends at t=H and
                        # emitted times are gapless from there.
                        assert times[0] == H
                        assert np.all(np.diff(times) == 1)
                    observed.append(len(view))
                except Exception as exc:  # noqa: BLE001 - collected below.
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for start in range(0, values.size, 25):
                writer_catalog.append("s", values[start : start + 25])
                time.sleep(0)  # Encourage interleaving.
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors, errors[0]
        assert observed, "readers never completed a snapshot read"
        # Readers observed the series growing, and every observation was a
        # prefix of the final durable state.
        final = (values.size - H) * GRID.n
        assert max(observed) <= final
        assert all(count % GRID.n == 0 for count in observed)

    def test_snapshot_stays_loadable_while_writer_appends(self, tmp_path):
        root = tmp_path / "cat"
        catalog = Catalog(root)
        catalog.create_series(
            "s", metric="variable_threshold", H=H, grid=GRID
        )
        catalog.append("s", _values(80))
        snapshot = Catalog(root, create=False).snapshot("s")
        before = snapshot.load_view()
        catalog.append("s", _values(40, seed=1) + 1.0)
        after = snapshot.load_view()  # Same capture: same rows, still valid.
        _assert_views_identical(before, after)
        assert len(Catalog(root).view("s")) > len(after)


class _FlushCrash(RuntimeError):
    """Stands in for the process dying mid-append."""


@pytest.fixture
def crashed_catalog(tmp_path, monkeypatch):
    """A catalog whose second append died between segment and meta flush.

    Returns ``(root, handle, batch1, batch2)`` with the crash already
    injected and verified to have fired.
    """
    root = tmp_path / "cat"
    catalog = Catalog(root)
    catalog.create_series("s", metric="variable_threshold", H=H, grid=GRID)
    batch1, batch2 = _values(60), _values(30, seed=7) + 0.5
    catalog.append("s", batch1)
    handle = catalog.series("s")

    real_write = catalog_module._write_json_atomic

    def failing_write(path, payload):
        if path.name == catalog_module._SERIES_FILE:
            raise _FlushCrash(f"simulated crash before flushing {path}")
        real_write(path, payload)

    monkeypatch.setattr(catalog_module, "_write_json_atomic", failing_write)
    with pytest.raises(_FlushCrash):
        catalog.append("s", batch2)
    monkeypatch.setattr(catalog_module, "_write_json_atomic", real_write)
    return root, catalog, handle, batch1, batch2


class TestCrashRecovery:
    def test_crash_leaves_orphan_segment_and_durable_prefix(
        self, crashed_catalog
    ):
        root, _catalog, _handle, batch1, _batch2 = crashed_catalog
        reopened = Catalog(root)
        handle = reopened.series("s")
        # Durable state is exactly the pre-crash prefix...
        assert handle.next_t == batch1.size
        assert handle.tuple_count == (batch1.size - H) * GRID.n
        # ...while the crashed append's segment is an on-disk orphan the
        # metadata never admitted.
        on_disk = {
            path.name
            for path in (root / "s").glob("seg-*.npz")
        }
        assert set(handle.segment_names) < on_disk

    def test_recovered_run_bit_identical_to_uninterrupted(
        self, crashed_catalog, tmp_path
    ):
        root, _catalog, _handle, batch1, batch2 = crashed_catalog
        reopened = Catalog(root)
        reopened.append("s", batch2)  # Resume: re-feed the lost batch.

        control = Catalog(tmp_path / "control")
        control.create_series(
            "s", metric="variable_threshold", H=H, grid=GRID
        )
        control.append("s", batch1)
        control.append("s", batch2)

        recovered_handle = reopened.series("s")
        control_handle = control.series("s")
        assert recovered_handle.next_t == control_handle.next_t
        assert recovered_handle.segment_names == control_handle.segment_names
        _assert_views_identical(
            control_handle.view(), recovered_handle.view()
        )

    def test_poisoned_handle_refuses_further_use(self, crashed_catalog):
        _root, _catalog, handle, _batch1, batch2 = crashed_catalog
        with pytest.raises(StoreError, match="stale"):
            handle.append(batch2)
        with pytest.raises(StoreError, match="stale"):
            handle.view()

    def test_in_process_recovery_via_fresh_handle(self, crashed_catalog):
        root, catalog, poisoned, batch1, batch2 = crashed_catalog
        fresh = catalog.series("s")
        assert fresh is not poisoned
        result = fresh.append(batch2)  # Works without reopening the catalog.
        assert result.fed == batch2.size
        assert fresh.next_t == batch1.size + batch2.size
        # The durable file agrees with the in-memory handle again.
        assert Catalog(root).series("s").next_t == fresh.next_t


class TestAtomicSegmentWrites:
    def test_failed_fresh_write_leaves_nothing(self, tmp_path, monkeypatch):
        catalog = Catalog(tmp_path / "cat")
        catalog.create_series(
            "s", metric="variable_threshold", H=H, grid=GRID
        )
        catalog.append("s", _values(40))
        view = catalog.view("s")
        target = tmp_path / "out.npz"

        def exploding_savez(handle, **arrays):
            handle.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", exploding_savez)
        with pytest.raises(OSError, match="disk full"):
            save_view_npz(view, target)
        assert not target.exists()
        assert list(tmp_path.glob(".out.npz.tmp")) == []

    def test_failed_overwrite_keeps_old_content(self, tmp_path, monkeypatch):
        catalog = Catalog(tmp_path / "cat")
        catalog.create_series(
            "s", metric="variable_threshold", H=H, grid=GRID
        )
        catalog.append("s", _values(40))
        view = catalog.view("s")
        target = tmp_path / "out.npz"
        save_view_npz(view, target)
        original_bytes = target.read_bytes()

        def exploding_savez(handle, **arrays):
            handle.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", exploding_savez)
        with pytest.raises(OSError, match="disk full"):
            save_view_npz(view, target)
        assert target.read_bytes() == original_bytes
        _assert_views_identical(view, load_view_npz(target))
