"""Binary (.npz) persistence: round trips, schema versioning, CSV parity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.synthetic import campus_temperature
from repro.db.prob_view import ProbTuple, ProbabilisticView
from repro.db.storage import load_view_csv, save_view_csv
from repro.distributions.gaussian import Gaussian
from repro.distributions.histogram import HistogramDistribution
from repro.distributions.uniform import Uniform
from repro.exceptions import DataError, SchemaVersionError, StoreError
from repro.metrics.base import DensityForecast, DensitySeries
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.pipeline import create_probabilistic_view
from repro.store import (
    load_density_series_npz,
    load_view_npz,
    save_density_series_npz,
    save_view_npz,
)
from repro.store.binary import (
    SCHEMA_VERSION,
    load_view_columns,
    load_view_columns_v2,
    save_view_columns,
    save_view_columns_v2,
)
from repro.view.omega import OmegaGrid


@pytest.fixture(scope="module")
def view() -> ProbabilisticView:
    return create_probabilistic_view(
        campus_temperature(160, rng=2),
        VariableThresholdingMetric(),
        H=40,
        grid=OmegaGrid(delta=0.5, n=6),
        view_name="campus_view",
    )


def _assert_same_columns(a: ProbabilisticView, b: ProbabilisticView) -> None:
    ca, cb = a.columns, b.columns
    assert np.array_equal(ca.t, cb.t)
    assert np.array_equal(ca.low, cb.low)
    assert np.array_equal(ca.high, cb.high)
    assert np.array_equal(ca.probability, cb.probability)
    decoded_a = [ca.labels[code] for code in ca.label_code]
    decoded_b = [cb.labels[code] for code in cb.label_code]
    assert decoded_a == decoded_b


class TestViewNpz:
    def test_round_trip_is_exact(self, view, tmp_path):
        path = tmp_path / "view.npz"
        save_view_npz(view, path)
        loaded = load_view_npz(path)
        _assert_same_columns(view, loaded)
        assert loaded.name == "view"  # Defaults to the file stem.
        assert load_view_npz(path, name="other").name == "other"

    def test_irregular_labels_survive(self, tmp_path):
        tuples = [
            ProbTuple(t=1, low=0.0, high=2.0, probability=0.5, label="room 1"),
            ProbTuple(t=1, low=2.0, high=4.0, probability=0.5, label="room 2"),
            ProbTuple(t=2, low=0.0, high=2.0, probability=1.0, label="room 1"),
        ]
        original = ProbabilisticView("rooms", tuples)
        path = tmp_path / "rooms.npz"
        save_view_npz(original, path)
        loaded = load_view_npz(path)
        assert [tup.label for tup in loaded] == ["room 1", "room 2", "room 1"]

    def test_suffixless_path_round_trips(self, view, tmp_path):
        """np.savez's silent '.npz' suffixing must not break the loaders."""
        path = tmp_path / "plain"
        save_view_npz(view, path)
        assert path.exists()
        assert len(load_view_npz(path)) == len(view)

    def test_empty_view_round_trips(self, tmp_path):
        empty = ProbabilisticView("empty", [])
        path = tmp_path / "empty.npz"
        save_view_npz(empty, path)
        assert len(load_view_npz(path)) == 0

    def test_schema_mismatch_rejected(self, view, tmp_path):
        path = tmp_path / "future.npz"
        cols = view.columns
        np.savez(
            path,
            schema=np.int64(SCHEMA_VERSION + 1),
            kind=np.str_("view_columns"),
            t=cols.t, low=cols.low, high=cols.high,
            probability=cols.probability, label_code=cols.label_code,
            labels=np.array(cols.labels),
        )
        with pytest.raises(SchemaVersionError) as info:
            load_view_npz(path)
        assert info.value.found == SCHEMA_VERSION + 1
        assert info.value.expected == SCHEMA_VERSION

    def test_wrong_kind_rejected(self, view, tmp_path):
        path = tmp_path / "density.npz"
        forecasts = VariableThresholdingMetric().run(
            campus_temperature(80, rng=0), 40
        )
        save_density_series_npz(forecasts, path)
        with pytest.raises(DataError):
            load_view_npz(path)

    def test_missing_file_raises_store_error(self, tmp_path):
        with pytest.raises(StoreError):
            load_view_npz(tmp_path / "nope.npz")

    def test_corrupt_probabilities_fail_validation(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            schema=np.int64(SCHEMA_VERSION),
            kind=np.str_("view_columns"),
            t=np.array([0], dtype=np.int64),
            low=np.array([0.0]),
            high=np.array([1.0]),
            probability=np.array([1.5]),
            label_code=np.array([0], dtype=np.int64),
            labels=np.array([""]),
        )
        with pytest.raises(Exception):
            load_view_npz(path)


class TestDensitySeriesNpz:
    def test_gaussian_round_trip(self, tmp_path):
        forecasts = VariableThresholdingMetric().run(
            campus_temperature(120, rng=1), 40
        )
        path = tmp_path / "dens.npz"
        save_density_series_npz(forecasts, path)
        loaded = load_density_series_npz(path)
        assert np.array_equal(loaded.times, forecasts.times)
        assert np.array_equal(loaded.means, forecasts.means)
        assert np.array_equal(loaded.volatilities, forecasts.volatilities)
        assert np.array_equal(loaded.lowers, forecasts.lowers)
        assert np.array_equal(loaded.uppers, forecasts.uppers)
        assert isinstance(loaded[0].distribution, Gaussian)

    def test_exact_variance_column_round_trips(self, tmp_path):
        """Gaussians must not lose a ulp to the sqrt/square round trip."""
        t = np.arange(4, dtype=np.int64)
        mean = np.zeros(4)
        variance = np.array([0.3, 0.07, 1.9, 2.2])
        volatility = np.sqrt(variance)
        series = DensitySeries.from_columns(
            t, mean, volatility, mean - 3 * volatility, mean + 3 * volatility,
            family="gaussian", variance=variance,
        )
        path = tmp_path / "var.npz"
        save_density_series_npz(series, path)
        loaded = load_density_series_npz(path)
        assert np.array_equal(loaded.variances, variance)
        for index in range(4):
            assert loaded[index].distribution.sigma2 == variance[index]

    def test_mixed_family_round_trip(self, tmp_path):
        forecasts = DensitySeries([
            DensityForecast(t=0, mean=1.0, distribution=Gaussian(1.0, 4.0),
                            lower=-5.0, upper=7.0, volatility=2.0),
            DensityForecast(t=1, mean=2.0, distribution=Uniform(1.0, 3.0),
                            lower=1.0, upper=3.0,
                            volatility=Uniform(1.0, 3.0).std()),
        ])
        path = tmp_path / "mixed.npz"
        save_density_series_npz(forecasts, path)
        loaded = load_density_series_npz(path)
        assert isinstance(loaded[0].distribution, Gaussian)
        assert isinstance(loaded[1].distribution, Uniform)
        assert loaded[1].distribution.low == 1.0
        assert loaded[1].distribution.high == 3.0

    def test_unstorable_family_rejected(self, tmp_path):
        histogram = HistogramDistribution(
            edges=np.array([0.0, 1.0, 2.0]), counts=np.array([1.0, 1.0])
        )
        forecasts = DensitySeries([
            DensityForecast(t=0, mean=1.0, distribution=histogram,
                            lower=0.0, upper=2.0, volatility=histogram.std()),
        ])
        with pytest.raises(StoreError):
            save_density_series_npz(forecasts, tmp_path / "hist.npz")


class TestCsvBinaryParity:
    """The satellite round-trip fidelity check: CSV and binary agree."""

    def test_view_csv_matches_binary(self, view, tmp_path):
        csv_path = tmp_path / "view.csv"
        npz_path = tmp_path / "view.npz"
        save_view_csv(view, csv_path)
        save_view_npz(view, npz_path)
        from_csv = load_view_csv(csv_path)
        from_npz = load_view_npz(npz_path)
        # repr-formatted CSV floats parse back exactly, so the two backends
        # must agree bit for bit — and with the original.
        _assert_same_columns(from_csv, from_npz)
        _assert_same_columns(view, from_npz)

    def test_csv_header_still_validated(self, tmp_path):
        path = tmp_path / "junk.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DataError):
            load_view_csv(path)

    def test_csv_empty_view(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_view_csv(ProbabilisticView("empty", []), path)
        assert len(load_view_csv(path)) == 0


class TestSegmentLayoutV2:
    """The mmap-able .npy-per-column segment layout."""

    def _columns(self, view):
        cols = view.columns
        return dict(
            t=cols.t, low=cols.low, high=cols.high,
            probability=cols.probability, label_code=cols.label_code,
            labels=cols.labels,
        )

    def test_round_trip_is_exact(self, view, tmp_path):
        path = tmp_path / "seg-00000001.v2"
        save_view_columns_v2(path, **self._columns(view))
        assert path.is_dir()
        loaded = load_view_columns_v2(path)
        cols = view.columns
        assert np.array_equal(loaded["t"], cols.t)
        assert np.array_equal(loaded["low"], cols.low)
        assert np.array_equal(loaded["high"], cols.high)
        assert np.array_equal(loaded["probability"], cols.probability)
        assert np.array_equal(loaded["label_code"], cols.label_code)
        assert tuple(str(s) for s in loaded["labels"]) == cols.labels

    def test_mmap_load_is_zero_copy_and_equal(self, view, tmp_path):
        path = tmp_path / "seg-00000001.v2"
        save_view_columns_v2(path, **self._columns(view))
        plain = load_view_columns_v2(path)
        mapped = load_view_columns_v2(path, mmap=True)
        for key in ("t", "low", "high", "probability", "label_code"):
            assert isinstance(mapped[key], np.memmap)
            assert np.array_equal(mapped[key], plain[key])

    def test_dispatch_by_suffix(self, view, tmp_path):
        v2 = tmp_path / "seg-00000001.v2"
        npz = tmp_path / "seg-00000001.npz"
        save_view_columns(v2, **self._columns(view))
        save_view_columns(npz, **self._columns(view))
        assert v2.is_dir() and npz.is_file()
        a = load_view_columns(v2, mmap=True)
        b = load_view_columns(npz, mmap=True)  # Transparent fallback.
        assert np.array_equal(a["probability"], b["probability"])

    def test_schema_version_enforced(self, view, tmp_path):
        path = tmp_path / "seg-00000001.v2"
        save_view_columns_v2(path, **self._columns(view))
        meta_path = path / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["schema_version"] = SCHEMA_VERSION + 7
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(SchemaVersionError):
            load_view_columns_v2(path)

    def test_missing_column_and_meta_fail_loudly(self, view, tmp_path):
        path = tmp_path / "seg-00000001.v2"
        save_view_columns_v2(path, **self._columns(view))
        (path / "low.npy").unlink()
        with pytest.raises(DataError, match="low"):
            load_view_columns_v2(path)
        with pytest.raises(StoreError, match="no such store file"):
            load_view_columns_v2(tmp_path / "seg-00000099.v2")
        (path / "meta.json").write_text("{not json")
        with pytest.raises(DataError):
            load_view_columns_v2(path)

    def test_overwrite_replaces_orphan(self, view, tmp_path):
        path = tmp_path / "seg-00000001.v2"
        save_view_columns_v2(path, **self._columns(view))
        smaller = view.take(np.arange(min(6, len(view))))
        rebuilt = ProbabilisticView("partial", smaller)
        save_view_columns_v2(path, **self._columns(rebuilt))
        assert load_view_columns_v2(path)["t"].size == len(rebuilt)
