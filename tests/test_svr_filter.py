"""Tests for the Successive Variance Reduction filter (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cleaning.svr_filter import (
    learn_sv_max,
    successive_variance_reduction,
)
from repro.exceptions import DataError, InvalidParameterError


class TestBasicCleaning:
    def test_single_spike_removed_and_interpolated(self):
        window = np.array([1.0, 1.1, 0.9, 50.0, 1.0, 1.05])
        result = successive_variance_reduction(window, sv_max=0.5)
        assert result.removed_indices == (3,)
        assert result.cleaned[3] == pytest.approx(0.5 * (0.9 + 1.0))
        assert result.final_variance <= 0.5

    def test_two_spikes_removed_in_reduction_order(self):
        """Fig. 6's scenario: the larger-variance-reduction point goes first."""
        window = np.array([1.0, 30.0, 1.1, 0.9, -40.0, 1.0, 1.05])
        result = successive_variance_reduction(window, sv_max=0.5)
        assert set(result.removed_indices) == {1, 4}
        assert result.removed_indices[0] == 4  # -40 reduces variance most.
        assert result.final_variance <= 0.5

    def test_clean_window_untouched(self):
        window = np.array([1.0, 1.05, 0.95, 1.02, 0.98])
        result = successive_variance_reduction(window, sv_max=1.0)
        assert result.removed_indices == ()
        np.testing.assert_array_equal(result.cleaned, window)

    def test_input_not_mutated(self):
        window = np.array([1.0, 1.0, 50.0, 1.0])
        original = window.copy()
        successive_variance_reduction(window, sv_max=0.1)
        np.testing.assert_array_equal(window, original)


class TestEdgeHandling:
    def test_spike_at_start_extrapolated(self):
        window = np.array([50.0, 1.0, 1.1, 0.9, 1.0])
        result = successive_variance_reduction(window, sv_max=0.5)
        assert 0 in result.removed_indices
        # Linear extrapolation from the two nearest points: 2*1.0 - 1.1.
        assert result.cleaned[0] == pytest.approx(0.9)

    def test_spike_at_end_extrapolated(self):
        window = np.array([1.0, 1.1, 0.9, 1.0, -50.0])
        result = successive_variance_reduction(window, sv_max=0.5)
        assert 4 in result.removed_indices
        assert result.cleaned[4] == pytest.approx(2.0 * 1.0 - 0.9)

    def test_unreachable_threshold_stops_at_cap(self, rng):
        window = rng.normal(size=20)
        result = successive_variance_reduction(window, sv_max=0.0)
        # Cap leaves at least three original points untouched.
        assert result.n_removed <= 17

    def test_explicit_max_removals(self):
        window = np.array([1.0, 30.0, 1.0, -30.0, 1.0, 25.0, 1.0])
        result = successive_variance_reduction(window, sv_max=0.01, max_removals=1)
        assert result.n_removed == 1

    def test_flat_window_terminates(self):
        result = successive_variance_reduction(np.full(10, 2.0), sv_max=0.0)
        assert result.n_removed == 0

    def test_validation(self):
        with pytest.raises(DataError):
            successive_variance_reduction(np.array([1.0, 2.0]), sv_max=1.0)
        with pytest.raises(InvalidParameterError):
            successive_variance_reduction(np.arange(5.0), sv_max=-1.0)


class TestLearnSvMax:
    def test_learned_threshold_covers_clean_windows(self, rng):
        clean = np.sin(np.arange(200) / 10.0) + rng.normal(0, 0.05, 200)
        sv_max = learn_sv_max(clean, window=8)
        # Every window's variance is by construction <= the learned max.
        result = successive_variance_reduction(clean[:8], sv_max)
        assert result.n_removed == 0

    def test_learned_threshold_flags_spikes(self, rng):
        clean = rng.normal(0, 0.1, 100)
        sv_max = learn_sv_max(clean, window=10)
        dirty = clean[:10].copy()
        dirty[4] = 25.0
        result = successive_variance_reduction(dirty, sv_max)
        assert 4 in result.removed_indices

    def test_window_longer_than_sample_rejected(self):
        with pytest.raises(DataError):
            learn_sv_max(np.arange(5.0), window=10)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=4,
        max_size=40,
    ),
    st.floats(min_value=0.0, max_value=50.0),
)
def test_svr_never_increases_variance(values, sv_max):
    """Each removal strictly reduces variance; output variance <= input."""
    window = np.asarray(values)
    before = float(np.var(window, ddof=1))
    result = successive_variance_reduction(window, sv_max)
    assert result.final_variance <= before + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        min_size=4,
        max_size=30,
    )
)
def test_svr_idempotent_once_satisfied(values):
    """Re-running the filter on its own output removes nothing new."""
    window = np.asarray(values)
    sv_max = 5.0
    first = successive_variance_reduction(window, sv_max)
    if first.final_variance <= sv_max:
        second = successive_variance_reduction(first.cleaned, sv_max)
        assert second.n_removed == 0
