"""Tests for the density store (persisted p_t(R_t))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.density_store import DensityStore
from repro.distributions.gaussian import Gaussian
from repro.distributions.histogram import HistogramDistribution
from repro.distributions.uniform import Uniform
from repro.exceptions import DataError, InvalidParameterError, QueryError
from repro.metrics.base import DensityForecast
from repro.metrics.uniform_threshold import UniformThresholdingMetric
from repro.metrics.variable_threshold import VariableThresholdingMetric
from repro.view.builder import ViewBuilder
from repro.view.omega import OmegaGrid


def _gaussian_forecast(t, mean=10.0, sigma=1.0):
    return DensityForecast(
        t=t, mean=mean, distribution=Gaussian(mean, sigma**2),
        lower=mean - 3 * sigma, upper=mean + 3 * sigma, volatility=sigma,
    )


class TestAppend:
    def test_gaussian_roundtrip(self):
        store = DensityStore()
        store.append(_gaussian_forecast(5, mean=2.0, sigma=0.5))
        row = store.at(5)
        dist = row.to_distribution()
        assert isinstance(dist, Gaussian)
        assert dist.mu == 2.0
        assert dist.std() == pytest.approx(0.5)

    def test_uniform_roundtrip(self):
        store = DensityStore()
        forecast = DensityForecast(
            t=3, mean=1.0, distribution=Uniform(0.0, 2.0),
            lower=0.0, upper=2.0, volatility=Uniform(0.0, 2.0).std(),
        )
        store.append(forecast)
        dist = store.at(3).to_distribution()
        assert isinstance(dist, Uniform)
        assert (dist.low, dist.high) == (0.0, 2.0)

    def test_times_must_increase(self):
        store = DensityStore()
        store.append(_gaussian_forecast(5))
        with pytest.raises(InvalidParameterError):
            store.append(_gaussian_forecast(5))
        with pytest.raises(InvalidParameterError):
            store.append(_gaussian_forecast(4))

    def test_unsupported_family_rejected(self):
        hist = HistogramDistribution.from_samples(np.arange(10.0), n_bins=5)
        forecast = DensityForecast(
            t=0, mean=hist.mean(), distribution=hist,
            lower=0.0, upper=9.0, volatility=hist.std(),
        )
        with pytest.raises(InvalidParameterError, match="family"):
            DensityStore().append(forecast)

    def test_append_series(self, campus_series):
        store = DensityStore()
        forecasts = VariableThresholdingMetric().run(campus_series, 40, step=5)
        store.append_series(forecasts)
        assert len(store) == len(forecasts)


class TestQuerying:
    def setup_method(self):
        self.store = DensityStore()
        for t in (10, 20, 30, 40):
            self.store.append(_gaussian_forecast(t, mean=float(t), sigma=t / 10.0))

    def test_between_range(self):
        series = self.store.between(15, 35)
        assert list(series.times) == [20, 30]

    def test_between_empty_rejected(self):
        with pytest.raises(QueryError):
            self.store.between(100, 200)

    def test_at_missing_time(self):
        with pytest.raises(QueryError):
            self.store.at(15)

    def test_all_rehydrates_everything(self):
        series = self.store.all()
        assert len(series) == 4
        np.testing.assert_allclose(series.means, [10.0, 20.0, 30.0, 40.0])

    def test_volatility_extremes(self):
        lo, hi = self.store.volatility_extremes()
        assert lo == pytest.approx(1.0)
        assert hi == pytest.approx(4.0)

    def test_empty_store_queries_rejected(self):
        empty = DensityStore()
        with pytest.raises(QueryError):
            empty.all()
        with pytest.raises(QueryError):
            empty.volatility_extremes()


class TestPersistence:
    def test_csv_roundtrip(self, tmp_path, campus_series):
        metric = UniformThresholdingMetric(threshold=0.4)
        forecasts = metric.run(campus_series, 40, step=20)
        store = DensityStore()
        store.append_series(forecasts)
        path = tmp_path / "densities.csv"
        store.save_csv(path)
        loaded = DensityStore.load_csv(path)
        assert len(loaded) == len(store)
        original = store.all()
        restored = loaded.all()
        np.testing.assert_allclose(restored.means, original.means)
        np.testing.assert_allclose(
            restored.volatilities, original.volatilities
        )

    def test_load_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DataError):
            DensityStore.load_csv(path)


class TestViewsFromStore:
    def test_store_feeds_builder_identically(self, campus_series):
        """Views from stored densities equal views from live forecasts."""
        metric = VariableThresholdingMetric()
        forecasts = metric.run(campus_series, 40, step=10)
        store = DensityStore()
        store.append_series(forecasts)
        grid = OmegaGrid(0.5, 6)
        builder = ViewBuilder(grid)
        live_rows = builder.build_rows(forecasts)
        stored_rows = builder.build_rows(store.all())
        for a, b in zip(live_rows, stored_rows):
            np.testing.assert_allclose(a.probabilities, b.probabilities,
                                       atol=1e-12)
