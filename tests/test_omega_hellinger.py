"""Tests for Omega range construction and the Hellinger/ratio theorems."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.view.hellinger import (
    hellinger_distance,
    ratio_threshold_for_distance,
    ratio_threshold_for_memory,
)
from repro.view.omega import OmegaGrid, OmegaRange


class TestOmegaRange:
    def test_contains_and_width(self):
        omega = OmegaRange(1.0, 3.0, label="room")
        assert omega.contains(2.0)
        assert not omega.contains(3.5)
        assert omega.width == 2.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            OmegaRange(2.0, 1.0)
        with pytest.raises(InvalidParameterError):
            OmegaRange(0.0, float("inf"))


class TestOmegaGrid:
    def test_paper_example(self):
        """Fig. 7's OMEGA delta=2, n=2 around r_hat=10."""
        grid = OmegaGrid(delta=2.0, n=2)
        ranges = grid.ranges_around(10.0)
        assert [(r.low, r.high) for r in ranges] == [(8.0, 10.0), (10.0, 12.0)]

    def test_edges_count_and_spacing(self):
        grid = OmegaGrid(delta=0.5, n=6)
        edges = grid.edges_around(0.0)
        assert edges.size == 7
        np.testing.assert_allclose(np.diff(edges), 0.5)

    def test_lambda_range(self):
        grid = OmegaGrid(delta=1.0, n=4)
        assert grid.lambdas.tolist() == [-2, -1, 0, 1]

    def test_ranges_are_contiguous(self):
        grid = OmegaGrid(delta=0.3, n=10)
        ranges = grid.ranges_around(5.0)
        for left, right in zip(ranges, ranges[1:]):
            assert left.high == pytest.approx(right.low)

    def test_total_width(self):
        assert OmegaGrid(delta=0.05, n=300).total_width() == pytest.approx(15.0)

    def test_n_must_be_even_and_positive(self):
        with pytest.raises(InvalidParameterError):
            OmegaGrid(delta=1.0, n=3)
        with pytest.raises(InvalidParameterError):
            OmegaGrid(delta=1.0, n=0)

    def test_delta_positive(self):
        with pytest.raises(InvalidParameterError):
            OmegaGrid(delta=0.0, n=2)

    def test_equality(self):
        assert OmegaGrid(1.0, 2) == OmegaGrid(1.0, 2)
        assert OmegaGrid(1.0, 2) != OmegaGrid(1.0, 4)


class TestHellingerDistance:
    def test_zero_for_equal_sigmas(self):
        assert hellinger_distance(2.0, 2.0) == 0.0

    def test_symmetric(self):
        assert hellinger_distance(1.0, 3.0) == pytest.approx(
            hellinger_distance(3.0, 1.0)
        )

    def test_monotone_in_ratio(self):
        distances = [hellinger_distance(1.0, r) for r in (1.5, 2.0, 4.0, 10.0)]
        assert distances == sorted(distances)

    def test_bounded_below_one(self):
        assert hellinger_distance(1e-6, 1e6) < 1.0

    def test_matches_eq10_closed_form(self):
        sigma_t, sigma_p = 1.0, 2.5
        expected = math.sqrt(
            1.0 - math.sqrt(2 * sigma_t * sigma_p / (sigma_t**2 + sigma_p**2))
        )
        assert hellinger_distance(sigma_t, sigma_p) == pytest.approx(expected)

    def test_positive_sigmas_required(self):
        with pytest.raises(InvalidParameterError):
            hellinger_distance(0.0, 1.0)


class TestTheorem1:
    def test_zero_constraint_gives_ratio_one(self):
        assert ratio_threshold_for_distance(0.0) == 1.0

    def test_ratio_monotone_in_constraint(self):
        ratios = [ratio_threshold_for_distance(h) for h in (0.001, 0.01, 0.1, 0.3)]
        assert ratios == sorted(ratios)
        assert all(r >= 1.0 for r in ratios)

    def test_constraint_domain(self):
        with pytest.raises(InvalidParameterError):
            ratio_threshold_for_distance(1.0)
        with pytest.raises(InvalidParameterError):
            ratio_threshold_for_distance(-0.1)

    def test_theorem_guarantee_is_tight(self):
        """At sigma' = d_s * sigma the Hellinger distance equals H' exactly."""
        for constraint in (0.005, 0.01, 0.05, 0.2):
            ratio = ratio_threshold_for_distance(constraint)
            achieved = hellinger_distance(1.0, ratio)
            assert achieved == pytest.approx(constraint, rel=1e-6)


class TestTheorem2:
    def test_closed_form(self):
        assert ratio_threshold_for_memory(16.0, 4) == pytest.approx(2.0)
        assert ratio_threshold_for_memory(1000.0, 3) == pytest.approx(10.0)

    def test_q_count_bounded_by_memory(self):
        max_ratio = 5000.0
        for q_max in (4, 16, 64):
            ratio = ratio_threshold_for_memory(max_ratio, q_max)
            # The 1e-9 slack mirrors the cache's own sizing arithmetic.
            implied_q = math.ceil(math.log(max_ratio) / math.log(ratio) - 1e-9)
            assert implied_q <= q_max

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ratio_threshold_for_memory(0.5, 4)
        with pytest.raises(InvalidParameterError):
            ratio_threshold_for_memory(10.0, 0)


@settings(max_examples=80, deadline=None)
@given(
    sigma=st.floats(min_value=1e-3, max_value=1e3),
    constraint=st.floats(min_value=1e-4, max_value=0.5),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_theorem1_property_any_sigma_within_ratio_is_within_distance(
    sigma, constraint, fraction
):
    """Any sigma' in [sigma, d_s * sigma] stays within the distance bound.

    This is the property the sigma-cache relies on: approximating from the
    cached key below never violates the user's Hellinger constraint.
    """
    ratio = ratio_threshold_for_distance(constraint)
    sigma_prime = sigma * (1.0 + fraction * (ratio - 1.0))
    assert hellinger_distance(sigma, sigma_prime) <= constraint + 1e-9
