"""Smoke + shape tests for the experiment harness at tiny scale.

Each experiment must return a well-formed table whose qualitative shape
matches the paper's claim; the full-size runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments import (
    get_scale,
    run_fig04,
    run_fig05,
    run_fig12,
    run_fig14a,
    run_fig14b,
    run_fig15,
    run_table02,
)
from repro.experiments.common import ExperimentTable, steps_for

TINY = 0.03


class TestCommon:
    def test_scale_resolution_priority(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert get_scale() == 0.5
        assert get_scale(0.25) == 0.25
        monkeypatch.delenv("REPRO_SCALE")
        assert 0.0 < get_scale() <= 1.0

    def test_scale_domain(self):
        with pytest.raises(InvalidParameterError):
            get_scale(0.0)
        with pytest.raises(InvalidParameterError):
            get_scale(2.0)

    def test_steps_for(self):
        assert steps_for(1000, 100) == 10
        assert steps_for(5, 100) == 1
        with pytest.raises(InvalidParameterError):
            steps_for(100, 0)

    def test_table_add_row_arity_checked(self):
        table = ExperimentTable("X", "t", ["a", "b"])
        with pytest.raises(InvalidParameterError):
            table.add_row(1)

    def test_table_column_extraction(self):
        table = ExperimentTable("X", "t", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]
        with pytest.raises(InvalidParameterError):
            table.column("c")

    def test_render_contains_title_and_notes(self):
        table = ExperimentTable("Fig. X", "demo", ["a"], notes="hello")
        table.add_row(1)
        text = table.render()
        assert "Fig. X" in text and "hello" in text


class TestTable02:
    def test_two_dataset_rows(self):
        table = run_table02(TINY)
        assert len(table.rows) == 2
        assert table.column("dataset") == ["campus-data", "car-data"]


class TestFig04:
    def test_regimes_present_in_both_datasets(self):
        table = run_fig04(TINY)
        assert all(table.column("regimes present"))


class TestFig05:
    def test_cgarch_bounds_far_tighter_than_garch(self):
        table = run_fig05(TINY)
        widths = dict(zip(table.column("model"), table.column("max bound width")))
        assert widths["C-GARCH"] < widths["ARMA-GARCH"]

    def test_cgarch_flags_errors(self):
        table = run_fig05(TINY)
        flagged = dict(zip(table.column("model"), table.column("errors flagged")))
        assert flagged["C-GARCH"] > 0


class TestFig12:
    def test_arma_garch_degrades_with_order(self):
        table = run_fig12(TINY, orders=(2, 8))
        dd = table.column("ARMA-GARCH")
        assert all(d > 0 for d in dd)
        # At tiny scale the trend is noisy; require only that p=8 is not
        # dramatically better (the paper's shape, with slack).
        assert dd[-1] > dd[0] * 0.6


class TestFig14:
    def test_cache_speedup_above_one(self):
        table = run_fig14a(sizes=(2000, 4000))
        assert all(s > 1.0 for s in table.column("speedup"))

    def test_cache_size_grows_logarithmically(self):
        table = run_fig14b(ratios=(100.0, 10000.0))
        counts = table.column("distributions")
        # 100x ratio increase adds only a constant factor ~2 of rows.
        assert counts[1] < counts[0] * 3


class TestFig15:
    def test_campus_rejects_harder_than_car(self):
        table = run_fig15(TINY, lags=(1, 2))
        margins = {}
        for row in table.rows:
            margins.setdefault(row[0], []).append(row[5])
        assert min(margins["campus-data"]) > max(margins["car-data"]) * 0.8

    def test_campus_rejects_at_small_lags(self):
        table = run_fig15(TINY, lags=(1,))
        campus_rows = [r for r in table.rows if r[0] == "campus-data"]
        assert campus_rows[0][4] is True
