"""Setup shim for environments without the ``wheel`` package.

The container this reproduction targets ships setuptools 65 without
``wheel``, so PEP 660 editable installs fail; providing a ``setup.py`` lets
``pip install -e .`` fall back to the legacy develop path.  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
